// Package fsst implements Fast Static Symbol Table string compression
// (Boncz, Neumann, Leis — PVLDB 2020). FSST replaces frequently occurring
// substrings of up to 8 bytes with 1-byte codes from an immutable 255-entry
// symbol table; decompression is a tight loop of table lookups and 8-byte
// copies. The table is trained per block with an iterative bottom-up
// algorithm that repeatedly compresses a sample, counts symbol and
// symbol-pair frequencies, and keeps the highest-gain candidates.
package fsst

import (
	"encoding/binary"
	"errors"
)

const (
	// MaxSymbols is the number of usable codes; code 255 is the escape
	// marker that prefixes a literal byte.
	MaxSymbols = 255
	// MaxSymbolLen is the maximum symbol length in bytes.
	MaxSymbolLen = 8
	// EscapeCode marks "next input byte is a literal".
	EscapeCode = 255

	// maxSampleBytes bounds the training sample, like the reference
	// implementation, so table construction stays cheap.
	maxSampleBytes = 1 << 14
	// buildIterations is the number of refinement generations.
	buildIterations = 5
)

// ErrCorrupt is returned for malformed compressed data or tables.
var ErrCorrupt = errors.New("fsst: corrupt stream")

// Symbol is a byte string of length 1..8 stored in a uint64
// (first byte in the lowest-order byte).
type Symbol struct {
	Val uint64
	Len uint8
}

func makeSymbol(b []byte) Symbol {
	var v uint64
	n := len(b)
	if n > MaxSymbolLen {
		n = MaxSymbolLen
	}
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return Symbol{Val: v, Len: uint8(n)}
}

func concatSymbols(a, b Symbol) (Symbol, bool) {
	if int(a.Len)+int(b.Len) > MaxSymbolLen {
		return Symbol{}, false
	}
	return Symbol{Val: a.Val | b.Val<<(8*uint(a.Len)), Len: a.Len + b.Len}, true
}

// Bytes returns the symbol's byte string.
func (s Symbol) Bytes() []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], s.Val)
	return buf[:s.Len]
}

// Table is an immutable FSST symbol table.
type Table struct {
	symbols [MaxSymbols]Symbol
	n       int
	// index buckets candidate codes by first byte, longest symbols first,
	// for greedy longest-match encoding.
	index [256][]uint8
	// decVal/decLen form the flat decode jump table: one unconditional
	// 8-byte store per code. decLen is 0 for unassigned codes (and for
	// the escape code, which is handled before the table lookup), which
	// doubles as the corruption check.
	decVal [256]uint64
	decLen [256]uint8
}

// NumSymbols returns the number of symbols in the table.
func (t *Table) NumSymbols() int { return t.n }

// SymbolAt returns symbol i (for inspection and tests).
func (t *Table) SymbolAt(i int) Symbol { return t.symbols[i] }

func (t *Table) buildIndex() {
	for i := range t.index {
		t.index[i] = nil
	}
	t.decVal = [256]uint64{}
	t.decLen = [256]uint8{}
	for i := 0; i < t.n; i++ {
		t.decVal[i] = t.symbols[i].Val
		t.decLen[i] = t.symbols[i].Len
	}
	// insert longer symbols first so each bucket is sorted by length desc
	for l := MaxSymbolLen; l >= 1; l-- {
		for i := 0; i < t.n; i++ {
			if int(t.symbols[i].Len) == l {
				first := byte(t.symbols[i].Val)
				t.index[first] = append(t.index[first], uint8(i))
			}
		}
	}
}

// findLongestMatch returns the code of the longest symbol matching a prefix
// of src, or -1 if none matches.
func (t *Table) findLongestMatch(src []byte) int {
	var window uint64
	n := len(src)
	if n >= 8 {
		window = binary.LittleEndian.Uint64(src)
		n = 8
	} else {
		for i := n - 1; i >= 0; i-- {
			window = window<<8 | uint64(src[i])
		}
	}
	for _, code := range t.index[src[0]] {
		s := t.symbols[code]
		if int(s.Len) > n {
			continue
		}
		mask := ^uint64(0)
		if s.Len < 8 {
			mask = (1 << (8 * uint(s.Len))) - 1
		}
		if window&mask == s.Val {
			return int(code)
		}
	}
	return -1
}

// Encode compresses src and appends the result to dst. Every input byte
// not covered by a symbol costs two output bytes (escape + literal).
func (t *Table) Encode(dst, src []byte) []byte {
	for i := 0; i < len(src); {
		if code := t.findLongestMatch(src[i:]); code >= 0 {
			dst = append(dst, byte(code))
			i += int(t.symbols[code].Len)
			continue
		}
		dst = append(dst, EscapeCode, src[i])
		i++
	}
	return dst
}

// EncodedSize returns len(Encode(nil, src)) without materializing output.
func (t *Table) EncodedSize(src []byte) int {
	size := 0
	for i := 0; i < len(src); {
		if code := t.findLongestMatch(src[i:]); code >= 0 {
			size++
			i += int(t.symbols[code].Len)
			continue
		}
		size += 2
		i++
	}
	return size
}

// Decode decompresses src (produced by Encode) and appends to dst.
//
// The hot loop is one jump-table load and one unconditional 8-byte
// store per code: a symbol of length l writes all 8 bytes of its value
// into dst's spare capacity and advances by l, so the next write
// overwrites the spill. Callers should pre-size dst's capacity to the
// stored decompressed length (the format records it next to the encoded
// payload); then the whole decode performs zero allocations — only the
// last up-to-7 output bytes fall back to the bounded tail loop.
func (t *Table) Decode(dst, src []byte) ([]byte, error) {
	i := 0
	for {
		// fast loop: unconditional 8-byte stores while ≥8 bytes of spare
		// capacity remain past the write position
		o := len(dst)
		out := dst[:cap(dst)]
		lim := cap(dst) - (MaxSymbolLen - 1)
		for i < len(src) && o < lim {
			c := src[i]
			if c == EscapeCode {
				i++
				if i >= len(src) {
					return dst[:o], ErrCorrupt
				}
				out[o] = src[i]
				o++
				i++
				continue
			}
			l := int(t.decLen[c])
			if l == 0 {
				return dst[:o], ErrCorrupt
			}
			binary.LittleEndian.PutUint64(out[o:], t.decVal[c])
			o += l
			i++
		}
		dst = dst[:o]
		if i >= len(src) {
			return dst, nil
		}
		// tail: spare capacity is nearly exhausted — switch to exact-length
		// appends (within a pre-sized buffer these never reallocate; an
		// undersized buffer grows here and re-enters the fast loop)
		for n := 0; i < len(src) && n < MaxSymbolLen; n++ {
			c := src[i]
			if c == EscapeCode {
				i++
				if i >= len(src) {
					return dst, ErrCorrupt
				}
				dst = append(dst, src[i])
				i++
				continue
			}
			l := int(t.decLen[c])
			if l == 0 {
				return dst, ErrCorrupt
			}
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], t.decVal[c])
			dst = append(dst, buf[:l]...)
			i++
		}
		if i >= len(src) {
			return dst, nil
		}
	}
}

// Train builds a symbol table from sample strings. An empty or tiny sample
// yields an empty table (everything escapes). When the input exceeds the
// training budget, evenly spaced chunks are taken from across the whole
// input rather than just its head — real columns drift within a block, and
// a head-only sample would learn symbols for only the first distribution.
func Train(sample [][]byte) *Table {
	total := 0
	for _, s := range sample {
		total += len(s)
	}
	var corpus []byte
	if total <= maxSampleBytes {
		for _, s := range sample {
			corpus = append(corpus, s...)
		}
	} else {
		const chunk = 512
		nChunks := maxSampleBytes / chunk
		stride := total / nChunks
		// walk the concatenation, copying `chunk` bytes every `stride`
		next := 0
		off := 0
		for _, s := range sample {
			for len(s) > 0 {
				if off+len(s) <= next {
					off += len(s)
					break
				}
				start := next - off
				if start < 0 {
					start = 0
				}
				end := start + chunk
				if end > len(s) {
					end = len(s)
				}
				corpus = append(corpus, s[start:end]...)
				if len(corpus) >= maxSampleBytes {
					s = nil
					break
				}
				next += stride
				if next < off+end {
					next = off + end
				}
			}
			if len(corpus) >= maxSampleBytes {
				break
			}
		}
	}
	t := &Table{}
	t.buildIndex()
	if len(corpus) == 0 {
		return t
	}

	for iter := 0; iter < buildIterations; iter++ {
		t = nextGeneration(t, corpus)
	}
	return t
}

// candidate tracks the gain of a potential symbol during training.
type candidate struct {
	sym  Symbol
	gain int
}

// nextGeneration compresses the corpus with the current table, counts
// single symbols and adjacent pairs, and returns a new table of the
// highest-gain candidates.
func nextGeneration(t *Table, corpus []byte) *Table {
	gains := make(map[Symbol]int)
	prev := Symbol{}
	havePrev := false
	for i := 0; i < len(corpus); {
		var cur Symbol
		if code := t.findLongestMatch(corpus[i:]); code >= 0 {
			cur = t.symbols[code]
		} else {
			cur = Symbol{Val: uint64(corpus[i]), Len: 1}
		}
		gains[cur] += int(cur.Len)
		if havePrev {
			if joined, ok := concatSymbols(prev, cur); ok {
				gains[joined] += int(joined.Len)
			}
		}
		prev, havePrev = cur, true
		i += int(cur.Len)
	}

	cands := make([]candidate, 0, len(gains))
	for sym, gain := range gains {
		// A 1-byte symbol saves nothing over an escape unless it is
		// frequent (escape costs 2 bytes); gain is already freq*len, so
		// single bytes are naturally ranked lower. Skip singletons.
		if gain <= int(sym.Len) {
			continue
		}
		cands = append(cands, candidate{sym: sym, gain: gain})
	}
	// Partial selection sort of the top MaxSymbols candidates by gain
	// (ties broken deterministically by symbol value for reproducibility).
	nt := &Table{}
	for nt.n < MaxSymbols && len(cands) > 0 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].gain > cands[best].gain ||
				(cands[i].gain == cands[best].gain &&
					(cands[i].sym.Len > cands[best].sym.Len ||
						(cands[i].sym.Len == cands[best].sym.Len && cands[i].sym.Val < cands[best].sym.Val))) {
				best = i
			}
		}
		nt.symbols[nt.n] = cands[best].sym
		nt.n++
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	nt.buildIndex()
	return nt
}

// AppendTable serializes the table and appends it to dst:
// n:u8 then per symbol len:u8 + bytes.
func (t *Table) AppendTable(dst []byte) []byte {
	dst = append(dst, byte(t.n))
	for i := 0; i < t.n; i++ {
		s := t.symbols[i]
		dst = append(dst, s.Len)
		dst = append(dst, s.Bytes()...)
	}
	return dst
}

// TableFromBytes deserializes a table, returning it and bytes consumed.
func TableFromBytes(src []byte) (*Table, int, error) {
	if len(src) < 1 {
		return nil, 0, ErrCorrupt
	}
	n := int(src[0])
	if n > MaxSymbols {
		return nil, 0, ErrCorrupt
	}
	pos := 1
	t := &Table{n: n}
	for i := 0; i < n; i++ {
		if pos >= len(src) {
			return nil, 0, ErrCorrupt
		}
		l := int(src[pos])
		pos++
		if l < 1 || l > MaxSymbolLen || pos+l > len(src) {
			return nil, 0, ErrCorrupt
		}
		t.symbols[i] = makeSymbol(src[pos : pos+l])
		pos += l
	}
	t.buildIndex()
	return t, pos, nil
}
