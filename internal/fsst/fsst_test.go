package fsst

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func trainOn(strs ...string) *Table {
	sample := make([][]byte, len(strs))
	for i, s := range strs {
		sample[i] = []byte(s)
	}
	return Train(sample)
}

func TestEmptyTableEscapesEverything(t *testing.T) {
	tab := Train(nil)
	if tab.NumSymbols() != 0 {
		t.Fatalf("empty sample built %d symbols", tab.NumSymbols())
	}
	src := []byte("hello")
	enc := tab.Encode(nil, src)
	if len(enc) != 2*len(src) {
		t.Fatalf("expected all-escape encoding of %d bytes, got %d", 2*len(src), len(enc))
	}
	dec, err := tab.Decode(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip: %q != %q", dec, src)
	}
}

func TestRoundTripStructuredStrings(t *testing.T) {
	var sample []string
	for i := 0; i < 500; i++ {
		sample = append(sample, fmt.Sprintf("https://www.example.com/products/item-%d?ref=homepage", i))
	}
	tab := trainOn(sample...)
	if tab.NumSymbols() == 0 {
		t.Fatal("no symbols learned from highly repetitive sample")
	}
	var in, enc []byte
	for _, s := range sample {
		in = append(in, s...)
	}
	enc = tab.Encode(nil, in)
	if len(enc) >= len(in)/2 {
		t.Fatalf("expected >2x compression on URLs, got %d -> %d", len(in), len(enc))
	}
	dec, err := tab.Decode(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, in) {
		t.Fatal("round trip mismatch")
	}
}

func TestSymbolInvariants(t *testing.T) {
	tab := trainOn(strings.Repeat("BTRBLOCKS compresses data lakes. ", 200))
	for i := 0; i < tab.NumSymbols(); i++ {
		s := tab.SymbolAt(i)
		if s.Len < 1 || s.Len > MaxSymbolLen {
			t.Fatalf("symbol %d has invalid length %d", i, s.Len)
		}
		if got := makeSymbol(s.Bytes()); got != s {
			t.Fatalf("symbol %d bytes round trip mismatch", i)
		}
	}
}

func TestEscapeHeavyBinaryInput(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := make([]byte, 4096)
	rng.Read(src)
	tab := Train([][]byte{src})
	enc := tab.Encode(nil, src)
	dec, err := tab.Decode(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatal("round trip mismatch on random bytes")
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	tab := trainOn(strings.Repeat("abcabcabdabc", 100))
	src := []byte("abcabcabdabcXYZ")
	if got, want := tab.EncodedSize(src), len(tab.Encode(nil, src)); got != want {
		t.Fatalf("EncodedSize=%d, actual=%d", got, want)
	}
}

func TestTableSerializeRoundTrip(t *testing.T) {
	tab := trainOn(strings.Repeat("SIGMOD 01 BRONX 04 BRONX 5777 E MAYO BLVD ", 100))
	data := tab.AppendTable(nil)
	got, used, err := TableFromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(data) {
		t.Fatalf("consumed %d of %d", used, len(data))
	}
	if got.NumSymbols() != tab.NumSymbols() {
		t.Fatalf("symbol count %d != %d", got.NumSymbols(), tab.NumSymbols())
	}
	src := []byte("01 BRONX and 04 BRONX near 5777 E MAYO BLVD")
	a := tab.Encode(nil, src)
	b := got.Encode(nil, src)
	if !bytes.Equal(a, b) {
		t.Fatal("deserialized table encodes differently")
	}
	dec, err := got.Decode(nil, a)
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatalf("decode with deserialized table failed: %v", err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	tab := trainOn(strings.Repeat("aaaa", 100))
	// escape at end of input with no literal byte
	if _, err := tab.Decode(nil, []byte{EscapeCode}); err == nil {
		t.Fatal("trailing escape not detected")
	}
	// code beyond table size
	if tab.NumSymbols() < MaxSymbols {
		if _, err := tab.Decode(nil, []byte{byte(tab.NumSymbols())}); err == nil {
			t.Fatal("out-of-range code not detected")
		}
	}
	// corrupt serialized tables
	data := tab.AppendTable(nil)
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := TableFromBytes(data[:cut]); err == nil && cut > 0 {
			// only the empty-table prefix (n=0 byte) may be valid, and
			// that needs data[0] == 0
			if !(cut >= 1 && data[0] == 0) {
				t.Fatalf("truncation at %d not detected", cut)
			}
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	tab := trainOn(strings.Repeat("the quick brown fox jumps over the lazy dog ", 50))
	f := func(src []byte) bool {
		enc := tab.Encode(nil, src)
		dec, err := tab.Decode(nil, enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "http://api.service.internal/v2/users/%d/orders?page=%d ", i%500, i%7)
	}
	src := []byte(sb.String())
	tab := Train([][]byte{src})
	enc := tab.Encode(nil, src)
	dst := make([]byte, 0, len(src))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = tab.Decode(dst[:0], enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "http://api.service.internal/v2/users/%d/orders?page=%d ", i%500, i%7)
	}
	src := []byte(sb.String())
	tab := Train([][]byte{src})
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Encode(nil, src)
	}
}
