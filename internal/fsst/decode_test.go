package fsst

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// decodeReference is the original per-symbol append decoder, kept as the
// oracle the jump-table Decode must match byte for byte.
func (t *Table) decodeReference(dst, src []byte) ([]byte, error) {
	var buf [8]byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c == EscapeCode {
			i++
			if i >= len(src) {
				return dst, ErrCorrupt
			}
			dst = append(dst, src[i])
			continue
		}
		if int(c) >= t.n {
			return dst, ErrCorrupt
		}
		s := t.symbols[c]
		binary.LittleEndian.PutUint64(buf[:], s.Val)
		dst = append(dst, buf[:s.Len]...)
	}
	return dst, nil
}

func trainedCorpus(seed int64, n int) ([]byte, *Table) {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"http://", "www.", ".com/", "user", "page", "abc", "xyzzy", "-", "?id="}
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(13) == 0 {
			sb.WriteByte(byte(rng.Intn(256))) // force escapes
		}
	}
	corpus := []byte(sb.String())
	return corpus, Train([][]byte{corpus})
}

// TestDecodeJumpTableEquivalence round-trips corpora through Encode and
// checks the jump-table Decode against the reference decoder, across
// pre-sized, undersized, and zero-capacity destination buffers.
func TestDecodeJumpTableEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		corpus, table := trainedCorpus(seed, 1<<14)
		enc := table.Encode(nil, corpus)
		want, err := table.decodeReference(nil, enc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, corpus) {
			t.Fatal("reference decoder does not round-trip")
		}
		for _, dst := range [][]byte{
			nil,
			make([]byte, 0, len(corpus)),     // exact pre-size (the production path)
			make([]byte, 0, len(corpus)/3),   // undersized: must grow correctly
			make([]byte, 0, len(corpus)+512), // oversized
		} {
			got, err := table.Decode(dst, enc)
			if err != nil {
				t.Fatalf("seed %d cap %d: %v", seed, cap(dst), err)
			}
			if !bytes.Equal(got, corpus) {
				t.Fatalf("seed %d cap %d: decode mismatch (%d vs %d bytes)", seed, cap(dst), len(got), len(corpus))
			}
		}
		// appending to an existing prefix must preserve it
		prefix := []byte("prefix!")
		got, err := table.Decode(append([]byte(nil), prefix...), enc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:len(prefix)], prefix) || !bytes.Equal(got[len(prefix):], corpus) {
			t.Fatal("decode with prefix corrupted output")
		}
	}
}

// TestDecodeCorruptJumpTable pins the error behavior of the jump-table
// decoder: out-of-range codes and truncated escapes fail on both the
// fast loop and the capacity-bounded tail.
func TestDecodeCorruptJumpTable(t *testing.T) {
	_, table := trainedCorpus(1, 1<<12)
	if table.NumSymbols() == MaxSymbols {
		t.Skip("table full: no unassigned code to test")
	}
	bad := byte(table.NumSymbols()) // first unassigned code
	cases := [][]byte{
		{bad},
		{EscapeCode}, // escape with no literal
		append(bytes.Repeat([]byte{0}, 64), bad),
		append(bytes.Repeat([]byte{0}, 64), EscapeCode),
	}
	for i, enc := range cases {
		if _, err := table.Decode(nil, enc); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
		// and with a dst sized so the corruption lands in the tail loop
		sized := make([]byte, 0, 8)
		if _, err := table.Decode(sized, enc); err == nil {
			t.Fatalf("case %d (tail): expected error", i)
		}
	}
	// empty input is valid
	if out, err := table.Decode(nil, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty decode: %v, %d bytes", err, len(out))
	}
}

// TestDecodeZeroAlloc is the steady-state allocation regression gate:
// decoding into a buffer pre-sized from the stored raw length (exactly
// how the format layer calls Decode) must not allocate.
func TestDecodeZeroAlloc(t *testing.T) {
	corpus, table := trainedCorpus(2, 1<<14)
	enc := table.Encode(nil, corpus)
	dst := make([]byte, 0, len(corpus))
	allocs := testing.AllocsPerRun(50, func() {
		out, err := table.Decode(dst, enc)
		if err != nil || len(out) != len(corpus) {
			t.Fatalf("decode: %v (%d bytes)", err, len(out))
		}
	})
	if allocs != 0 {
		t.Fatalf("Decode allocated %.1f times per pre-sized block decode; want 0", allocs)
	}
}

// BenchmarkDecodeJumpTable measures jump-table decode throughput
// (output MB/s) against the retained reference decoder.
func BenchmarkDecodeJumpTable(b *testing.B) {
	corpus, table := trainedCorpus(3, 1<<20)
	enc := table.Encode(nil, corpus)
	dst := make([]byte, 0, len(corpus))
	b.Run("jumptable", func(b *testing.B) {
		b.SetBytes(int64(len(corpus)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := table.Decode(dst, enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.SetBytes(int64(len(corpus)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := table.decodeReference(dst, enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}
