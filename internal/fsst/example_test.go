package fsst_test

import (
	"bytes"
	"fmt"

	"btrblocks/internal/fsst"
)

// Train builds an immutable symbol table from a sample of the data;
// Encode replaces covered substrings with 1-byte codes, and Decode
// expands them back via a flat 256-entry jump table. Pre-sizing dst's
// capacity to the known decompressed length makes Decode allocation-free.
func ExampleTrain() {
	sample := [][]byte{
		[]byte("http://example.com/a"),
		[]byte("http://example.com/b"),
		[]byte("http://example.com/c"),
	}
	table := fsst.Train(sample)

	raw := []byte("http://example.com/decode")
	enc := table.Encode(nil, raw)

	dst := make([]byte, 0, len(raw)) // pre-sized: zero-alloc decode
	dec, err := table.Decode(dst, enc)
	if err != nil {
		panic(err)
	}
	fmt.Println("roundtrip ok:", bytes.Equal(dec, raw))
	fmt.Println("compressed smaller than raw:", len(enc) < len(raw))
	// Output:
	// roundtrip ok: true
	// compressed smaller than raw: true
}
