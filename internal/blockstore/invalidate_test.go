package blockstore

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"btrblocks"
)

// intColumnFile compresses a constant-valued int column.
func intColumnFile(t *testing.T, name string, rows int, value int32) []byte {
	t.Helper()
	values := make([]int32, rows)
	for i := range values {
		values[i] = value
	}
	data, err := btrblocks.CompressColumn(btrblocks.IntColumn(name, values),
		&btrblocks.Options{BlockSize: 2000})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func openDiskStore(t *testing.T, files map[string][]byte) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	writeTree(t, dir, files)
	store, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	return store, dir
}

func TestInvalidateReloadsReplacedFile(t *testing.T) {
	store, dir := openDiskStore(t, map[string][]byte{
		"t/c.btr": intColumnFile(t, "c", 4000, 1),
	})

	// Decode both blocks so the stale values are cached.
	for idx := 0; idx < 2; idx++ {
		blk, err := store.Block("t/c.btr", idx)
		if err != nil {
			t.Fatal(err)
		}
		if blk.Col.Ints[0] != 1 {
			t.Fatalf("block %d: pre-swap value %d", idx, blk.Col.Ints[0])
		}
	}
	if store.Metrics().CacheEntries.Load() == 0 {
		t.Fatal("nothing cached before the swap")
	}

	// Atomically replace the file on disk, as btringest's publish does.
	replacement := intColumnFile(t, "c", 4000, 2)
	tmp := filepath.Join(dir, "t", "c.btr.tmp")
	if err := os.WriteFile(tmp, replacement, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "t", "c.btr")); err != nil {
		t.Fatal(err)
	}

	before := store.ModTime()
	store.Invalidate("t/c.btr")
	if !store.ModTime().After(before) {
		t.Error("ModTime did not advance on invalidation")
	}
	for idx := 0; idx < 2; idx++ {
		blk, err := store.Block("t/c.btr", idx)
		if err != nil {
			t.Fatal(err)
		}
		if blk.Col.Ints[0] != 2 {
			t.Fatalf("block %d: served stale value %d after invalidation", idx, blk.Col.Ints[0])
		}
	}
	m := store.Metrics()
	if m.Invalidations.Load() != 1 {
		t.Errorf("Invalidations = %d, want 1", m.Invalidations.Load())
	}
	if m.InvalidatedBlocks.Load() != 2 {
		t.Errorf("InvalidatedBlocks = %d, want 2", m.InvalidatedBlocks.Load())
	}
}

func TestInvalidateRemovesAndAddsFiles(t *testing.T) {
	store, dir := openDiskStore(t, map[string][]byte{
		"t/a.btr": intColumnFile(t, "a", 1000, 1),
		"t/b.btr": intColumnFile(t, "b", 1000, 1),
	})
	if _, err := store.Block("t/a.btr", 0); err != nil {
		t.Fatal(err)
	}

	// Removal: delete on disk, invalidate, gone from the file set.
	if err := os.Remove(filepath.Join(dir, "t", "a.btr")); err != nil {
		t.Fatal(err)
	}
	store.Invalidate("t/a.btr")
	if store.File("t/a.btr") != nil {
		t.Fatal("removed file still listed")
	}
	if _, err := store.Block("t/a.btr", 0); err == nil {
		t.Fatal("removed file still serves blocks")
	}
	if len(store.Files()) != 1 {
		t.Fatalf("file set has %d entries, want 1", len(store.Files()))
	}

	// Addition: a newly published file becomes visible on invalidation.
	if err := os.WriteFile(filepath.Join(dir, "t", "new.btr"),
		intColumnFile(t, "new", 1000, 9), 0o644); err != nil {
		t.Fatal(err)
	}
	store.Invalidate("t/new.btr")
	if f := store.File("t/new.btr"); f == nil || f.Kind != "column" {
		t.Fatalf("new file not picked up: %+v", f)
	}
	blk, err := store.Block("t/new.btr", 0)
	if err != nil || blk.Col.Ints[0] != 9 {
		t.Fatalf("new file block: %v %+v", err, blk)
	}
	names := store.Files()
	if len(names) != 2 || names[0].Name != "t/b.btr" || names[1].Name != "t/new.btr" {
		t.Fatalf("file set after add: %v", []string{names[0].Name, names[1].Name})
	}
}

func TestInvalidateUnknownNameIsNoop(t *testing.T) {
	store, _ := openDiskStore(t, map[string][]byte{
		"t/a.btr": intColumnFile(t, "a", 1000, 1),
	})
	store.Invalidate("t/never-existed.btr")
	if len(store.Files()) != 1 {
		t.Fatal("no-op invalidation changed the file set")
	}
	if store.Metrics().Invalidations.Load() != 1 {
		t.Fatal("no-op invalidation not counted")
	}
}

// TestInvalidateMemoryStoreDropsCacheOnly covers stores built from an
// in-memory corpus (no backing dir): Invalidate cannot reload bytes but
// must still purge the cache.
func TestInvalidateMemoryStoreDropsCacheOnly(t *testing.T) {
	data, _ := compressTestColumn(t, "c", 4000, 2000)
	store, err := NewStore(map[string][]byte{"c.btr": data}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.Block("c.btr", 0); err != nil {
		t.Fatal(err)
	}
	entries := store.Metrics().CacheEntries.Load()
	if entries == 0 {
		t.Fatal("nothing cached")
	}
	store.Invalidate("c.btr")
	if store.File("c.btr") == nil {
		t.Fatal("memory-backed file dropped by invalidation")
	}
	if got := store.Metrics().CacheEntries.Load(); got != 0 {
		t.Fatalf("cache entries after invalidation = %d, want 0", got)
	}
	// The file still serves — a fresh decode repopulates the cache.
	if _, err := store.Block("c.btr", 0); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidateHTTPRoundTrip(t *testing.T) {
	contents, _ := testCorpus(t)
	dir := t.TempDir()
	writeTree(t, dir, contents)
	store, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	cl := NewClient(srv.URL)
	ctx := context.Background()

	// Replace a file on disk, invalidate over HTTP, verify the swap.
	if err := os.WriteFile(filepath.Join(dir, "t", "i.btr"),
		intColumnFile(t, "i", 1000, 77), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Invalidate(ctx, "t/i.btr")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "reloaded" || res.File != "t/i.btr" {
		t.Fatalf("invalidate result: %+v", res)
	}
	blk, err := store.Block("t/i.btr", 0)
	if err != nil || blk.Col.Ints[0] != 77 {
		t.Fatalf("post-invalidate block: %v", err)
	}

	// Removal over HTTP.
	if err := os.Remove(filepath.Join(dir, "t", "s.btr")); err != nil {
		t.Fatal(err)
	}
	res, err = cl.Invalidate(ctx, "t/s.btr")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "removed" {
		t.Fatalf("invalidate of deleted file: %+v", res)
	}
	if store.File("t/s.btr") != nil {
		t.Fatal("deleted file still hosted after HTTP invalidation")
	}
}
