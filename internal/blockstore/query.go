package blockstore

// The query surface of the store: POST /v1/query executes a JSON plan
// (internal/query's format) against hosted column files. Column names in
// the plan are store-relative file names; a column's BTRM sidecar
// (<name>.btrm), when hosted alongside it, provides the per-block bounds
// the executor prunes with before any compressed bytes are touched.

import (
	"context"
	"io"
	"net/http"

	"btrblocks/internal/obs"
	"btrblocks/internal/query"
)

// MetaSuffix is the naming convention tying a metadata sidecar to its
// column file: serving data/prices alongside data/prices.btrm enables
// block pruning for queries over data/prices.
const MetaSuffix = ".btrm"

// storeSource adapts the store's file set to the executor's Source: a
// plan column resolves to the file of the same name, and the file's
// sidecar (if hosted) supplies pruning bounds. A missing file is
// errNotFound so the HTTP layer answers 404, distinguishing "no such
// column" from a malformed plan's 400.
type storeSource struct {
	s *Store
}

func (src storeSource) Column(name string) (*query.Col, error) {
	f := src.s.File(name)
	if f == nil {
		return nil, errNotFound
	}
	c := &query.Col{Index: f.Index, Data: f.Data}
	if mf := src.s.File(name + MetaSuffix); mf != nil {
		// A stale or mismatched sidecar is handled downstream: the executor
		// cross-checks block counts and row counts and silently disables
		// pruning rather than risking a false negative.
		c.Meta = mf.Meta
	}
	return c, nil
}

// QueryContext executes a validated plan against the store's files and
// folds the run's pruning and path statistics into the store metrics.
func (s *Store) QueryContext(ctx context.Context, p *query.Plan) (*query.Result, error) {
	e := &query.Executor{Source: storeSource{s}, Options: s.cfg.Options}
	res, err := e.Run(ctx, p)
	if err != nil {
		return nil, err
	}
	s.metrics.QueryRequests.Add(1)
	s.metrics.QueryPredicates.Add(res.Stats.Predicates)
	s.metrics.QueryBlocksPruned.Add(res.Stats.BlocksPruned)
	s.metrics.QueryBlocksScanned.Add(res.Stats.BlocksScanned)
	return res, nil
}

// handleQuery serves POST /v1/query: a JSON plan in, a query.Result out.
// Plan problems — malformed JSON, unknown ops, type-mismatched literals,
// empty IN lists — are 400s; an unknown column file is 404; damaged
// blocks inside the scanned range surface as 422, never a 500.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, query.MaxPlanBytes))
	if err != nil {
		http.Error(w, "reading plan: "+err.Error(), http.StatusBadRequest)
		return
	}
	p, err := query.ParsePlan(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	_, span := obs.StartChild(r.Context(), "store.query")
	span.SetAttrInt("plan_bytes", int64(len(body)))
	res, err := s.store.QueryContext(r.Context(), p)
	span.SetError(err)
	if res != nil {
		span.SetAttrInt("matched", res.Matched)
		span.SetAttrInt("blocks_pruned", res.Stats.BlocksPruned)
		span.SetAttrInt("blocks_scanned", res.Stats.BlocksScanned)
	}
	span.End()
	if err != nil {
		if query.IsPlanError(err) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.fail(w, err)
		return
	}
	writeJSON(w, res)
}
