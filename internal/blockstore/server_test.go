package blockstore

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"btrblocks"
)

// writeTree materializes an in-memory corpus as a directory tree.
func writeTree(t *testing.T, dir string, contents map[string][]byte) {
	t.Helper()
	for name, data := range contents {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// testCorpus builds one multi-block column file per type, with NULLs and
// awkward doubles (NaN, Inf, negative zero) to stress the wire formats.
func testCorpus(t *testing.T) (map[string][]byte, map[string]btrblocks.Column) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	const n = 6000
	nulls := btrblocks.NewNullMask()
	for i := 0; i < n; i += 5 {
		nulls.SetNull(i)
	}
	ints := make([]int32, n)
	ints64 := make([]int64, n)
	doubles := make([]float64, n)
	strs := make([]string, n)
	for i := 0; i < n; i++ {
		ints[i] = int32(rng.Intn(500))
		ints64[i] = int64(rng.Intn(500)) << 30
		doubles[i] = float64(rng.Intn(10000)) / 4
		strs[i] = fmt.Sprintf("city-%d", rng.Intn(40))
	}
	doubles[1] = math.NaN()
	doubles[2] = math.Inf(1)
	doubles[3] = math.Copysign(0, -1)

	cols := map[string]btrblocks.Column{
		"t/i.btr": btrblocks.IntColumn("i", ints),
		"t/l.btr": btrblocks.Int64Column("l", ints64),
		"t/d.btr": btrblocks.DoubleColumn("d", doubles),
		"t/s.btr": btrblocks.StringColumn("s", strs),
	}
	contents := make(map[string][]byte)
	for name, col := range cols {
		col.Nulls = nulls
		cols[name] = col
		data, err := btrblocks.CompressColumn(col, &btrblocks.Options{BlockSize: 2000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		contents[name] = data
	}
	return contents, cols
}

func newTestServer(t *testing.T, cfg Config) (*Store, *Client, map[string][]byte, map[string]btrblocks.Column) {
	t.Helper()
	contents, cols := testCorpus(t)
	store, err := NewStore(contents, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	srv := httptest.NewServer(NewServer(store))
	t.Cleanup(srv.Close)
	return store, NewClient(srv.URL), contents, cols
}

func TestServerFilesAndRaw(t *testing.T) {
	_, cl, contents, _ := newTestServer(t, Config{})
	ctx := context.Background()

	metas, err := cl.Files(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != len(contents) {
		t.Fatalf("%d files listed, want %d", len(metas), len(contents))
	}
	for _, m := range metas {
		if m.Kind != "column" || m.Rows != 6000 || m.Blocks != 3 {
			t.Fatalf("meta %+v", m)
		}
		if m.Bytes != len(contents[m.Name]) {
			t.Fatalf("%s: %d bytes listed, file has %d", m.Name, m.Bytes, len(contents[m.Name]))
		}
	}

	// Raw bytes are served verbatim, and ranges work (the S3-style path).
	raw, err := cl.Raw(ctx, "t/i.btr")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, contents["t/i.btr"]) {
		t.Fatal("raw bytes differ from stored file")
	}
	part, err := cl.RawRange(ctx, "t/i.btr", 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, contents["t/i.btr"][8:108]) {
		t.Fatal("range bytes differ")
	}
}

func TestServerBlocksMatchLocalDecode(t *testing.T) {
	store, cl, contents, _ := newTestServer(t, Config{})
	ctx := context.Background()
	opt := store.Options()

	for name, data := range contents {
		full, err := btrblocks.DecompressColumn(data, opt)
		if err != nil {
			t.Fatal(err)
		}
		meta, err := cl.FileMeta(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		for b := 0; b < meta.Blocks; b++ {
			bin, err := cl.Block(ctx, name, b)
			if err != nil {
				t.Fatalf("%s block %d: %v", name, b, err)
			}
			jsn, err := cl.BlockJSON(ctx, name, b)
			if err != nil {
				t.Fatalf("%s block %d: %v", name, b, err)
			}
			checkBlockAgainst(t, bin, &full, name)
			checkBlockAgainst(t, jsn, &full, name)
			rows += bin.Rows
		}
		if rows != full.Len() {
			t.Fatalf("%s: blocks cover %d rows, column has %d", name, rows, full.Len())
		}
	}
}

// checkBlockAgainst compares served block values (from either wire
// format) to the locally decompressed column. Doubles compare by bits so
// NaN and negative zero count as equal to themselves.
func checkBlockAgainst(t *testing.T, blk *BlockValues, full *btrblocks.Column, name string) {
	t.Helper()
	isNull := make(map[int]bool, len(blk.Nulls))
	for _, p := range blk.Nulls {
		isNull[p] = true
	}
	for i := 0; i < blk.Rows; i++ {
		r := blk.StartRow + i
		if full.Nulls.IsNull(r) != isNull[i] {
			t.Fatalf("%s row %d: NULL mismatch", name, r)
		}
		if isNull[i] {
			continue
		}
		ok := true
		switch {
		case blk.Ints != nil:
			ok = blk.Ints[i] == full.Ints[r]
		case blk.Ints64 != nil:
			ok = blk.Ints64[i] == full.Ints64[r]
		case blk.Doubles != nil:
			ok = math.Float64bits(blk.Doubles[i]) == math.Float64bits(full.Doubles[r])
		default:
			ok = blk.Strings[i] == full.Strings.At(r)
		}
		if !ok {
			t.Fatalf("%s row %d: value mismatch", name, r)
		}
	}
}

func TestServerCountEqMatchesLocal(t *testing.T) {
	store, cl, contents, cols := newTestServer(t, Config{})
	ctx := context.Background()
	opt := store.Options()

	probes := map[string][]string{
		"t/i.btr": {"7", "250", "-1"},
		"t/l.btr": {fmt.Sprint(int64(3) << 30), "0", "-1"},
		"t/d.btr": {"2.25", "0.25", "-7"},
		"t/s.btr": {"city-3", "city-11", "nowhere"},
	}
	for name, values := range probes {
		col := cols[name]
		for _, v := range values {
			res, err := cl.CountEq(ctx, name, v)
			if err != nil {
				t.Fatalf("%s %q: %v", name, v, err)
			}
			var want int
			switch col.Type {
			case btrblocks.TypeInt:
				var p int32
				fmt.Sscan(v, &p)
				want, err = btrblocks.CountEqualInt32(contents[name], p, opt)
			case btrblocks.TypeInt64:
				var p int64
				fmt.Sscan(v, &p)
				want, err = btrblocks.CountEqualInt64(contents[name], p, opt)
			case btrblocks.TypeDouble:
				var p float64
				fmt.Sscan(v, &p)
				want, err = btrblocks.CountEqualDouble(contents[name], p, opt)
			case btrblocks.TypeString:
				want, err = btrblocks.CountEqualString(contents[name], v, opt)
			}
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("%s %q: served %d, local %d", name, v, res.Count, want)
			}
			if res.Type != col.Type.String() {
				t.Fatalf("%s: served type %q", name, res.Type)
			}
		}
	}
}

func TestServerErrorPaths(t *testing.T) {
	_, cl, _, _ := newTestServer(t, Config{})

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(cl.base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for path, want := range map[string]int{
		"/v1/raw/no-such-file":                       http.StatusNotFound,
		"/v1/files?file=no-such-file":                http.StatusNotFound,
		"/v1/block?file=no-such-file&block=0":        http.StatusNotFound,
		"/v1/block?file=t/i.btr&block=99":            http.StatusBadRequest,
		"/v1/block?file=t/i.btr&block=x":             http.StatusBadRequest,
		"/v1/block?file=t/i.btr":                     http.StatusBadRequest,
		"/v1/block?file=t/i.btr&block=0&format=yaml": http.StatusBadRequest,
		"/v1/count-eq?file=no-such&value=1":          http.StatusNotFound,
		"/v1/count-eq?file=t/i.btr":                  http.StatusBadRequest,
		"/v1/count-eq?file=t/i.btr&value=zebra":      http.StatusBadRequest,
		"/healthz":                                   http.StatusOK,
	} {
		if got := status(path); got != want {
			t.Errorf("GET %s = %d, want %d", path, got, want)
		}
	}
	// Non-GET methods are rejected.
	resp, err := http.Post(cl.base+"/v1/files", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d, want 405", resp.StatusCode)
	}
}

func TestServerTelemetryAndMetrics(t *testing.T) {
	_, cl, _, _ := newTestServer(t, Config{
		Options: &btrblocks.Options{Telemetry: btrblocks.NewTelemetry()},
	})
	ctx := context.Background()

	// Generate traffic: two hits on the same block.
	if _, err := cl.Block(ctx, "t/i.btr", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Block(ctx, "t/i.btr", 0); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Telemetry(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache.Misses != 1 || rep.Cache.Hits != 1 || rep.Cache.DecodedBlocks != 1 {
		t.Fatalf("cache stats %+v", rep.Cache)
	}
	if rep.Telemetry == nil || rep.Telemetry.DecodeBlocks != 1 {
		t.Fatalf("library telemetry missing or wrong: %+v", rep.Telemetry)
	}
	if len(rep.Telemetry.Events) != 0 {
		t.Fatal("per-block events must be stripped from the wire report")
	}

	text, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"btrserved_cache_hits_total 1",
		"btrserved_cache_misses_total 1",
		"btrserved_decoded_blocks_total 1",
		`btrserved_http_requests_total{route="/v1/block"} 2`,
		`btrserved_http_request_duration_seconds_count{route="/v1/block"} 2`,
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestServerScanColumn(t *testing.T) {
	_, cl, _, cols := newTestServer(t, Config{PrefetchBlocks: 2})
	ctx := context.Background()

	for name, col := range cols {
		rows, bytes, err := cl.ScanColumn(ctx, name, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rows != col.Len() {
			t.Fatalf("%s: scanned %d rows, want %d", name, rows, col.Len())
		}
		if bytes <= 0 {
			t.Fatalf("%s: scanned %d bytes", name, bytes)
		}
	}
	// Scanning a non-column is a clean error, not a hang.
	if _, _, err := cl.ScanColumn(ctx, "no-such", 2); err == nil {
		t.Fatal("scan of missing file succeeded")
	}
}

func TestOpenServesFromDisk(t *testing.T) {
	contents, _ := testCorpus(t)
	dir := t.TempDir()
	writeTree(t, dir, contents)

	store, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if len(store.Files()) != len(contents) {
		t.Fatalf("loaded %d files, want %d", len(store.Files()), len(contents))
	}
	for name, data := range contents {
		f := store.File(name)
		if f == nil || !bytes.Equal(f.Data, data) {
			t.Fatalf("%s not loaded intact", name)
		}
		if f.Kind != "column" {
			t.Fatalf("%s classified as %s", name, f.Kind)
		}
	}
	// An unparseable file is hosted as raw, not rejected.
	if _, err := NewStore(map[string][]byte{"junk": []byte("not a container")}, Config{}); err != nil {
		t.Fatalf("raw file rejected: %v", err)
	}
}
