package blockstore

import (
	"container/list"
	"hash/maphash"
	"sync"
)

// Cache is a sharded, byte-bounded LRU of decompressed blocks with
// singleflight loading: concurrent GetOrLoad calls for the same key run
// the loader exactly once and share its result. Sharding keeps lock
// contention off the serving hot path; the byte bound is enforced per
// shard as maxBytes/shards, so the total never exceeds maxBytes.
//
// Errors are not cached: a failed load is returned to every waiter of
// that flight and the next request retries.
type Cache struct {
	shards []shard
	seed   maphash.Seed
}

type entry struct {
	key   string
	val   *Block
	bytes int64
}

type flight struct {
	done chan struct{}
	val  *Block
	err  error
}

type shard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	inflight map[string]*flight
	metrics  *Metrics
}

// DefaultCacheShards is the shard count used when Config leaves it zero.
const DefaultCacheShards = 16

// NewCache returns a cache bounded to maxBytes of decompressed block
// data across the given number of shards (<= 0 means
// DefaultCacheShards). A maxBytes of 0 disables residency entirely —
// loads still dedup in-flight, but nothing is kept.
func NewCache(maxBytes int64, shards int, m *Metrics) *Cache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	c := &Cache{shards: make([]shard, shards), seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i] = shard{
			maxBytes: maxBytes / int64(shards),
			ll:       list.New(),
			items:    make(map[string]*list.Element),
			inflight: make(map[string]*flight),
			metrics:  m,
		}
	}
	return c
}

func (c *Cache) shard(key string) *shard {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// GetOrLoad returns the cached block for key, or runs load to produce
// it. Concurrent calls for the same key wait on a single load.
func (c *Cache) GetOrLoad(key string, load func() (*Block, error)) (*Block, error) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		s.mu.Unlock()
		s.metrics.CacheHits.Add(1)
		return val, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		// join the in-progress decode: a hit as far as work is concerned
		s.metrics.CacheHits.Add(1)
		<-f.done
		return f.val, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()
	s.metrics.CacheMisses.Add(1)

	val, err := load()

	s.mu.Lock()
	delete(s.inflight, key)
	if err == nil {
		s.insert(key, val)
	}
	s.mu.Unlock()
	f.val, f.err = val, err
	close(f.done)
	return val, err
}

// insert adds an entry and evicts from the cold end until the shard is
// back under its byte budget. Called with s.mu held. An entry larger
// than the whole budget is admitted and immediately evicted again, so
// the bound holds even for oversized blocks.
func (s *shard) insert(key string, val *Block) {
	b := int64(val.Bytes)
	s.items[key] = s.ll.PushFront(&entry{key: key, val: val, bytes: b})
	s.bytes += b
	s.metrics.CacheBytes.Add(b)
	s.metrics.CacheEntries.Add(1)
	for s.bytes > s.maxBytes && s.ll.Len() > 0 {
		back := s.ll.Back()
		e := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.bytes -= e.bytes
		s.metrics.CacheBytes.Add(-e.bytes)
		s.metrics.CacheEntries.Add(-1)
		s.metrics.CacheEvictions.Add(1)
	}
}

// InvalidateFile removes every resident block of the named file (keys
// are "name\x00idx", so a prefix match covers all block indices) and
// returns how many entries were dropped. Loads in flight are not
// interrupted; the store keeps their stale results out of the cache by
// failing loads whose file was replaced mid-decode.
func (c *Cache) InvalidateFile(name string) int {
	prefix := name + "\x00"
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, el := range s.items {
			if !hasPrefix(key, prefix) {
				continue
			}
			e := el.Value.(*entry)
			s.ll.Remove(el)
			delete(s.items, key)
			s.bytes -= e.bytes
			s.metrics.CacheBytes.Add(-e.bytes)
			s.metrics.CacheEntries.Add(-1)
			dropped++
		}
		s.mu.Unlock()
	}
	if dropped > 0 {
		c.shards[0].metrics.InvalidatedBlocks.Add(int64(dropped))
	}
	return dropped
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// Contains reports whether key is resident (without touching LRU order).
func (c *Cache) Contains(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.items[key]
	return ok
}

// Bytes returns the total decompressed bytes resident.
func (c *Cache) Bytes() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}

// Len returns the number of resident blocks.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.items)
		s.mu.Unlock()
	}
	return total
}
