// Package blockstore is the serving layer of the repository: it hosts a
// set of BtrBlocks files and hands them out over HTTP at three
// granularities — raw byte ranges (the S3-style path), decompressed
// blocks (JSON or binary), and pushed-down equality predicates answered
// from the compressed representation. It is the measured counterpart of
// internal/s3sim: where s3sim models a network in front of the decoder,
// blockstore puts a real HTTP server there and serves real bytes.
//
// The pieces: Store loads and indexes the files and decodes blocks
// through a sharded, byte-bounded LRU Cache with singleflight dedup, so
// concurrent requests for one block decode it exactly once; a worker-pool
// prefetcher decodes ahead of sequential scans; Metrics counts cache and
// request behavior and renders Prometheus text; Server is the HTTP
// surface and Client its Go consumer.
package blockstore

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"btrblocks"
	"btrblocks/internal/obs"
	"btrblocks/metadata"
)

// Config tunes a Store.
type Config struct {
	// CacheBytes bounds the decompressed-block cache (default 256 MiB).
	// Negative disables caching entirely.
	CacheBytes int64
	// CacheShards is the cache shard count (default DefaultCacheShards).
	CacheShards int
	// PrefetchBlocks is how many blocks past a requested one the store
	// decodes ahead for sequential scans (0 disables prefetch).
	PrefetchBlocks int
	// PrefetchWorkers is the readahead worker-pool size (default 2 when
	// prefetching is enabled).
	PrefetchWorkers int
	// QuarantineThreshold is how many corrupt decode failures a block
	// accumulates before the store quarantines it and stops retrying
	// (default 3; negative disables quarantining). Only corruption
	// (errors.Is ErrCorrupt — checksum mismatches, truncation, decoder
	// rejections) counts; not-found and bad-request errors do not.
	QuarantineThreshold int
	// QuarantineTTL, when positive, lets a quarantined block be re-probed
	// after the TTL elapses — self-healing for transient media errors.
	// Zero means quarantine is permanent for the store's lifetime.
	QuarantineTTL time.Duration
	// Options configures decompression and predicate evaluation. When
	// Options.Telemetry is set, every block decode is counted on it.
	Options *btrblocks.Options
}

func (c Config) cacheBytes() int64 {
	if c.CacheBytes < 0 {
		return 0
	}
	if c.CacheBytes == 0 {
		return 256 << 20
	}
	return c.CacheBytes
}

func (c Config) prefetchWorkers() int {
	if c.PrefetchWorkers > 0 {
		return c.PrefetchWorkers
	}
	return 2
}

func (c Config) quarantineThreshold() int {
	if c.QuarantineThreshold < 0 {
		return 0 // disabled
	}
	if c.QuarantineThreshold == 0 {
		return 3
	}
	return c.QuarantineThreshold
}

// File is one hosted file.
type File struct {
	// Name is the store-relative, slash-separated path.
	Name string
	// Data is the raw compressed file.
	Data []byte
	// Kind is the detected container format ("column", "chunk",
	// "stream"), "meta" for a BTRM metadata sidecar, or "raw" when the
	// file is not a BtrBlocks container.
	Kind string
	// Rows is the total row count (0 for raw files).
	Rows int
	// Index is the block directory; non-nil only for column files, which
	// are the kind served at block and predicate granularity.
	Index *btrblocks.ColumnIndex
	// Meta is the parsed per-block zone map when the file is a BTRM
	// metadata sidecar (<column>.btrm); the query path uses the sidecar
	// of a column file for block pruning.
	Meta *metadata.ColumnMeta
}

// Blocks returns the number of addressable blocks (0 unless a column).
func (f *File) Blocks() int {
	if f.Index == nil {
		return 0
	}
	return len(f.Index.Blocks)
}

// Block is one decompressed column block as held by the cache.
type Block struct {
	File     string
	Index    int
	StartRow int
	// Col holds the decoded values; its NULL mask is rebased to the
	// block (position 0 = StartRow).
	Col btrblocks.Column
	// Bytes is the decompressed in-memory size, the unit of cache
	// accounting.
	Bytes int
}

// Rows returns the block's row count.
func (b *Block) Rows() int { return b.Col.Len() }

type prefetchTask struct {
	name  string
	block int
}

// Store hosts a set of files and serves decompressed blocks through the
// cache. Safe for concurrent use. Close stops the prefetch workers.
type Store struct {
	cfg     Config
	cache   *Cache
	metrics *Metrics

	// fmu guards the file set, which is mutable: Invalidate reloads or
	// removes entries while requests are being served. dir is set only by
	// Open — a store built from in-memory contents has no backing
	// directory to reload from.
	fmu    sync.RWMutex
	dir    string
	files  map[string]*File
	names  []string
	loaded time.Time

	prefetchCh chan prefetchTask
	quit       chan struct{}
	wg         sync.WaitGroup
	closed     atomic.Bool

	// Quarantine state: blocks whose decode keeps failing with corruption
	// are fenced off so scans degrade gracefully instead of re-decoding
	// (and re-failing on) the same damaged bytes forever.
	quarMu      sync.Mutex
	failures    map[string]int       // cache key -> consecutive corrupt failures
	quarantined map[string]time.Time // cache key -> when quarantined
}

// NewStore builds a store from in-memory file contents, keyed by
// store-relative name. Every file is classified by its magic bytes;
// column files additionally get a block index. Unparseable files are
// kept and served raw — a data lake directory can hold anything.
func NewStore(contents map[string][]byte, cfg Config) (*Store, error) {
	s := &Store{
		cfg:         cfg,
		files:       make(map[string]*File, len(contents)),
		metrics:     NewMetrics(),
		loaded:      time.Now(),
		failures:    make(map[string]int),
		quarantined: make(map[string]time.Time),
	}
	s.cache = NewCache(cfg.cacheBytes(), cfg.CacheShards, s.metrics)
	for name, data := range contents {
		s.files[name] = classifyFile(name, data)
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)

	if cfg.PrefetchBlocks > 0 {
		s.prefetchCh = make(chan prefetchTask, 256)
		s.quit = make(chan struct{})
		for w := 0; w < cfg.prefetchWorkers(); w++ {
			s.wg.Add(1)
			go s.prefetchWorker()
		}
	}
	return s, nil
}

// Open loads every regular file under dir into a store. Names are
// slash-separated paths relative to dir.
func Open(dir string, cfg Config) (*Store, error) {
	contents := make(map[string][]byte)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.Type().IsRegular() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		contents[filepath.ToSlash(rel)] = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(contents) == 0 {
		return nil, fmt.Errorf("blockstore: no files under %s", dir)
	}
	s, err := NewStore(contents, cfg)
	if err != nil {
		return nil, err
	}
	s.dir = dir
	return s, nil
}

// classifyFile builds a File entry: the format is detected from magic
// bytes, and column files get a parsed block index. Unparseable files
// are kept and served raw — a data lake directory can hold anything.
func classifyFile(name string, data []byte) *File {
	f := &File{Name: name, Data: data, Kind: "raw"}
	if m, used, err := metadata.FromBytes(data); err == nil && used == len(data) {
		f.Kind = "meta"
		f.Meta = &m
		return f
	}
	if info, err := btrblocks.Inspect(data); err == nil {
		f.Kind = info.Kind.String()
		f.Rows = info.Rows()
	}
	if ix, err := btrblocks.ParseColumnIndex(data); err == nil {
		f.Index = ix
		f.Rows = ix.Rows
	}
	return f
}

// Invalidate drops every cached block and quarantine record of the
// named file and — when the store was opened from a directory — reloads
// the file's bytes from disk, so a column file atomically replaced (or
// newly published, or removed) by a writer like btringest is served
// fresh. A decode racing the swap can not leak stale bytes into the
// cache: loads whose file entry changed mid-flight are discarded and
// retried against the new entry. Unknown names are a no-op (drop-only),
// so writers can invalidate eagerly.
func (s *Store) Invalidate(name string) {
	// Read and classify outside fmu — a large column file would
	// otherwise stall every concurrent reader for the whole disk read.
	// The lock is only taken for the O(1)-ish entry swap below.
	var replacement *File
	removed := false
	if s.dir != "" {
		path := filepath.Join(s.dir, filepath.FromSlash(name))
		data, err := os.ReadFile(path)
		switch {
		case err == nil:
			replacement = classifyFile(name, data)
		case os.IsNotExist(err):
			removed = true
		default:
			// Transient read failure: keep serving the old bytes rather than
			// dropping the file; the cache purge below still happens.
		}
	}
	s.fmu.Lock()
	switch {
	case replacement != nil:
		if _, known := s.files[name]; !known {
			s.names = append(s.names, name)
			sort.Strings(s.names)
		}
		s.files[name] = replacement
	case removed:
		if _, known := s.files[name]; known {
			delete(s.files, name)
			i := sort.SearchStrings(s.names, name)
			if i < len(s.names) && s.names[i] == name {
				s.names = append(s.names[:i], s.names[i+1:]...)
			}
		}
	}
	s.loaded = time.Now()
	s.fmu.Unlock()

	s.cache.InvalidateFile(name)
	s.clearQuarantine(name)
	s.metrics.Invalidations.Add(1)
}

// AcceptRepair replaces (or adds) the named file with a pushed copy —
// the receiving half of cross-replica repair. The payload is verified
// before anything changes: it must be a BtrBlocks container whose
// checksums and payloads all check out, so a damaged or malicious push
// can never displace a good copy. Accepted bytes are persisted
// atomically (temp + rename) when the store has a backing directory,
// the entry is swapped in under the file lock, and every cached block
// and quarantine record of the old copy is dropped.
func (s *Store) AcceptRepair(name string, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("%w: empty repair payload", btrblocks.ErrCorrupt)
	}
	if _, ok := btrblocks.SniffKind(data); !ok {
		return fmt.Errorf("%w: repair payload is not a btrblocks container", btrblocks.ErrCorrupt)
	}
	rep := btrblocks.Verify(data, &btrblocks.VerifyOptions{Deep: true})
	if !rep.OK {
		s.metrics.RepairsRejected.Add(1)
		return fmt.Errorf("%w: repair payload failed verification: %s", btrblocks.ErrCorrupt, verifySummary(rep))
	}
	if s.dir != "" {
		path := filepath.Join(s.dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		tmp, err := os.CreateTemp(filepath.Dir(path), ".repair-*")
		if err != nil {
			return err
		}
		if _, err := tmp.Write(data); err == nil {
			err = tmp.Sync()
		} else {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			os.Remove(tmp.Name())
			return err
		}
	}
	replacement := classifyFile(name, append([]byte(nil), data...))
	s.fmu.Lock()
	if _, known := s.files[name]; !known {
		s.names = append(s.names, name)
		sort.Strings(s.names)
	}
	s.files[name] = replacement
	s.loaded = time.Now()
	s.fmu.Unlock()

	s.cache.InvalidateFile(name)
	s.clearQuarantine(name)
	s.metrics.RepairsAccepted.Add(1)
	return nil
}

// clearQuarantine drops the failure and quarantine records of every
// block of the named file (shared by Invalidate and AcceptRepair).
func (s *Store) clearQuarantine(name string) {
	prefix := name + "\x00"
	s.quarMu.Lock()
	for key := range s.failures {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			delete(s.failures, key)
		}
	}
	for key := range s.quarantined {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			delete(s.quarantined, key)
			s.metrics.QuarantinedBlocks.Add(-1)
		}
	}
	s.quarMu.Unlock()
}

// verifySummary renders the first problem a failed VerifyReport found.
func verifySummary(rep *btrblocks.VerifyReport) string {
	if len(rep.Errors) > 0 {
		return rep.Errors[0]
	}
	for _, col := range rep.Columns {
		if col.Error != "" {
			return col.Error
		}
		for _, b := range col.Blocks {
			if !b.OK {
				return fmt.Sprintf("block %d: %s", b.Block, b.Error)
			}
		}
	}
	return "verification failed"
}

// Close stops the prefetch workers. The store must not be used after
// concurrent requests have drained; Block calls during Close are safe
// (their readahead is simply dropped).
func (s *Store) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.quit != nil {
		close(s.quit)
		s.wg.Wait()
	}
}

// Files returns the hosted files sorted by name.
func (s *Store) Files() []*File {
	s.fmu.RLock()
	defer s.fmu.RUnlock()
	out := make([]*File, len(s.names))
	for i, name := range s.names {
		out[i] = s.files[name]
	}
	return out
}

// File returns one file, or nil if absent.
func (s *Store) File(name string) *File {
	s.fmu.RLock()
	defer s.fmu.RUnlock()
	return s.files[name]
}

// Metrics returns the store's counters (shared with its servers).
func (s *Store) Metrics() *Metrics { return s.metrics }

// Cache returns the block cache (exposed for tests and telemetry).
func (s *Store) Cache() *Cache { return s.cache }

// ModTime returns the time the file set last changed (load or
// invalidation), used for HTTP caching headers.
func (s *Store) ModTime() time.Time {
	s.fmu.RLock()
	defer s.fmu.RUnlock()
	return s.loaded
}

// Options returns the store's decompression options.
func (s *Store) Options() *btrblocks.Options { return s.cfg.Options }

// Block returns block idx of the named column file, decoding it through
// the cache, and schedules readahead of the following blocks.
func (s *Store) Block(name string, idx int) (*Block, error) {
	return s.BlockContext(context.Background(), name, idx)
}

// BlockContext is Block with a caller context: when the context carries
// a tracing span, the cache lookup (tagged hit/miss) and any resulting
// block decode record child spans.
func (s *Store) BlockContext(ctx context.Context, name string, idx int) (*Block, error) {
	blk, err := s.cachedBlock(ctx, name, idx)
	if err != nil {
		return nil, err
	}
	s.schedulePrefetch(name, idx)
	return blk, nil
}

// ErrNotFound is reported (via error string) for absent files; the HTTP
// layer maps it to 404.
var errNotFound = fmt.Errorf("blockstore: file not found")

// IsNotFound reports whether err means the file does not exist.
func IsNotFound(err error) bool { return err == errNotFound }

// errQuarantined marks a block the store has fenced off after repeated
// corrupt decodes; the HTTP layer maps it to 410 Gone.
var errQuarantined = errors.New("blockstore: block quarantined after repeated corruption")

// IsQuarantined reports whether err means the block is quarantined.
func IsQuarantined(err error) bool { return errors.Is(err, errQuarantined) }

// IsCorrupt reports whether err means the block's bytes are damaged
// (checksum mismatch, truncation, or decoder rejection); the HTTP layer
// maps it to 422 Unprocessable Entity.
func IsCorrupt(err error) bool { return errors.Is(err, btrblocks.ErrCorrupt) }

// errStaleLoad marks a decode whose file entry was replaced by an
// Invalidate while the decode ran: the result must not be served or
// cached. Internal — callers retry against the new entry.
var errStaleLoad = errors.New("blockstore: file replaced during decode")

func (s *Store) cachedBlock(ctx context.Context, name string, idx int) (*Block, error) {
	for {
		blk, err := s.cachedBlockOnce(ctx, name, idx)
		if errors.Is(err, errStaleLoad) {
			continue
		}
		return blk, err
	}
}

func (s *Store) cachedBlockOnce(ctx context.Context, name string, idx int) (*Block, error) {
	f := s.File(name)
	if f == nil {
		return nil, errNotFound
	}
	if f.Index == nil {
		return nil, fmt.Errorf("blockstore: %s is a %s file, not a column", name, f.Kind)
	}
	if idx < 0 || idx >= len(f.Index.Blocks) {
		return nil, fmt.Errorf("blockstore: %s block %d out of range [0,%d)", name, idx, len(f.Index.Blocks))
	}
	key := name + "\x00" + strconv.Itoa(idx)
	if err := s.checkQuarantine(key, name, idx); err != nil {
		return nil, err
	}
	_, lookup := obs.StartChild(ctx, "cache.lookup")
	lookup.SetAttr("file", name)
	lookup.SetAttrInt("block", int64(idx))
	loaded := false
	// The outcome is recorded inside the load closure so that waiters
	// sharing one singleflight decode don't each count the same failure:
	// quarantineThreshold counts actual corrupt decodes, not callers.
	blk, err := s.cache.GetOrLoad(key, func() (*Block, error) {
		loaded = true
		_, dec := obs.StartChild(ctx, "block.decode")
		dec.SetAttr("file", name)
		dec.SetAttrInt("block", int64(idx))
		b, err := s.decodeBlock(f, idx)
		dec.SetError(err)
		dec.End()
		s.recordOutcome(key, err)
		if err == nil && s.File(name) != f {
			// Invalidate swapped the file entry mid-decode; errors are never
			// cached, so the stale block cannot become resident.
			return nil, errStaleLoad
		}
		return b, err
	})
	if lookup != nil {
		if loaded {
			lookup.SetAttr("result", "miss")
		} else {
			lookup.SetAttr("result", "hit")
		}
		lookup.End()
	}
	return blk, err
}

// checkQuarantine fails fast for quarantined blocks. An expired
// QuarantineTTL lifts the fence so the block gets one fresh probe —
// self-healing when the damage was transient (e.g. the file was
// re-uploaded and the store reloaded it).
func (s *Store) checkQuarantine(key, name string, idx int) error {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	since, ok := s.quarantined[key]
	if !ok {
		return nil
	}
	if ttl := s.cfg.QuarantineTTL; ttl > 0 && time.Since(since) > ttl {
		delete(s.quarantined, key)
		s.failures[key] = 0
		s.metrics.QuarantinedBlocks.Add(-1)
		return nil
	}
	return fmt.Errorf("%w: %s block %d", errQuarantined, name, idx)
}

// recordOutcome updates the failure ledger after a decode attempt:
// corruption counts toward quarantine, success clears the slate, and
// other errors (cancellations, not-found) are ignored.
func (s *Store) recordOutcome(key string, err error) {
	threshold := s.cfg.quarantineThreshold()
	switch {
	case err == nil:
		s.quarMu.Lock()
		delete(s.failures, key)
		s.quarMu.Unlock()
	case IsCorrupt(err):
		s.metrics.CorruptBlocks.Add(1)
		if threshold == 0 {
			return
		}
		s.quarMu.Lock()
		s.failures[key]++
		if s.failures[key] >= threshold {
			if _, already := s.quarantined[key]; !already {
				s.quarantined[key] = time.Now()
				s.metrics.QuarantinedBlocks.Add(1)
			}
		}
		s.quarMu.Unlock()
	}
}

// Quarantined returns the quarantined block keys ("name\x00idx"), for
// telemetry and tests.
func (s *Store) Quarantined() []string {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	out := make([]string, 0, len(s.quarantined))
	for k := range s.quarantined {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s *Store) decodeBlock(f *File, idx int) (*Block, error) {
	col, err := f.Index.DecompressBlock(f.Data, idx, s.cfg.Options)
	if err != nil {
		return nil, err
	}
	blk := &Block{
		File:     f.Name,
		Index:    idx,
		StartRow: f.Index.Blocks[idx].StartRow,
		Col:      col,
		// NULL positions ride along in the cache but are small; the value
		// payload dominates.
		Bytes: col.UncompressedBytes(),
	}
	s.metrics.DecodedBlocks.Add(1)
	s.metrics.DecodedBytes.Add(int64(blk.Bytes))
	return blk, nil
}

// schedulePrefetch enqueues readahead of the blocks following idx.
// Non-blocking: a full queue drops tasks rather than stalling the
// request that triggered them.
func (s *Store) schedulePrefetch(name string, idx int) {
	if s.prefetchCh == nil || s.closed.Load() {
		return
	}
	f := s.File(name)
	if f == nil || f.Index == nil {
		return
	}
	last := idx + s.cfg.PrefetchBlocks
	if max := len(f.Index.Blocks) - 1; last > max {
		last = max
	}
	for b := idx + 1; b <= last; b++ {
		select {
		case s.prefetchCh <- prefetchTask{name: name, block: b}:
			s.metrics.PrefetchScheduled.Add(1)
		default:
			s.metrics.PrefetchDropped.Add(1)
		}
	}
}

func (s *Store) prefetchWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case t := <-s.prefetchCh:
			// Readahead decodes through the same cache (and therefore
			// dedups against foreground requests) but does not itself
			// schedule further readahead — no cascades.
			_, _ = s.cachedBlock(context.Background(), t.name, t.block)
		}
	}
}

// Trace re-derives the cascade decision trace for one block (or every
// block when idx < 0) of a column file. The block is decoded through the
// cache, then re-compressed with a decision tracer attached; because
// sampling is seeded per block and NULL densification is idempotent, the
// re-compression reproduces the choice the stored block embodies, now
// with the full candidate slate the picker scored. CPU-heavier than a
// plain block fetch — this is a debugging endpoint, not a scan path.
func (s *Store) Trace(name string, idx int) (*btrblocks.DecisionTrace, error) {
	f := s.File(name)
	if f == nil {
		return nil, errNotFound
	}
	if f.Index == nil {
		return nil, fmt.Errorf("blockstore: %s is a %s file, not a column", name, f.Kind)
	}
	first, last := idx, idx
	if idx < 0 {
		first, last = 0, len(f.Index.Blocks)-1
	}
	tracer := btrblocks.NewTracer()
	var opt btrblocks.Options
	if s.cfg.Options != nil {
		opt = *s.cfg.Options
	}
	opt.Telemetry = nil
	opt.Trace = tracer
	out := &btrblocks.DecisionTrace{Version: btrblocks.TraceVersion}
	for b := first; b <= last; b++ {
		blk, err := s.cachedBlock(context.Background(), name, b)
		if err != nil {
			return nil, err
		}
		tracer.Reset()
		opt.BlockSize = blk.Rows()
		if _, err := btrblocks.CompressColumn(blk.Col, &opt); err != nil {
			return nil, err
		}
		tr := tracer.Snapshot()
		for i := range tr.Blocks {
			// The re-compression sees a one-block column; restore the
			// block's real index within the file.
			tr.Blocks[i].Block = b
			out.Blocks = append(out.Blocks, tr.Blocks[i])
		}
	}
	return out, nil
}

// CountEqual answers an equality predicate on a column file from its
// compressed bytes, routed through the type-appropriate fast path on
// the store's already-parsed ColumnIndex (no framing re-parse). The
// probe value is parsed according to the column type: base-10 integers
// for int columns, a Go float literal for doubles, and the raw string
// otherwise. It returns the match count and the column type.
func (s *Store) CountEqual(name, value string) (int, btrblocks.Type, error) {
	return s.CountEqualContext(context.Background(), name, value)
}

// CountEqualContext is CountEqual with a caller context: cancellation
// reaches the per-block predicate tasks and, when the context carries a
// tracing span, each block evaluation records a child span.
func (s *Store) CountEqualContext(ctx context.Context, name, value string) (int, btrblocks.Type, error) {
	f := s.File(name)
	if f == nil {
		return 0, 0, errNotFound
	}
	if f.Index == nil {
		return 0, 0, fmt.Errorf("blockstore: %s is a %s file, not a column", name, f.Kind)
	}
	opt := s.cfg.Options
	switch f.Index.Type {
	case btrblocks.TypeInt:
		v, err := strconv.ParseInt(value, 10, 32)
		if err != nil {
			return 0, f.Index.Type, fmt.Errorf("blockstore: bad int32 probe %q: %v", value, err)
		}
		n, err := f.Index.CountEqualInt32Context(ctx, f.Data, int32(v), opt)
		return n, f.Index.Type, err
	case btrblocks.TypeInt64:
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return 0, f.Index.Type, fmt.Errorf("blockstore: bad int64 probe %q: %v", value, err)
		}
		n, err := f.Index.CountEqualInt64Context(ctx, f.Data, v, opt)
		return n, f.Index.Type, err
	case btrblocks.TypeDouble:
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return 0, f.Index.Type, fmt.Errorf("blockstore: bad double probe %q: %v", value, err)
		}
		n, err := f.Index.CountEqualDoubleContext(ctx, f.Data, v, opt)
		return n, f.Index.Type, err
	default:
		n, err := f.Index.CountEqualStringContext(ctx, f.Data, value, opt)
		return n, f.Index.Type, err
	}
}
