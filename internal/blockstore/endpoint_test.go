package blockstore

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"btrblocks"
)

// After threshold consecutive transport/5xx failures the client marks
// the endpoint down and fails fast without touching the wire; after the
// TTL exactly one request probes through, and a success clears the mark.
func TestClientEndpointDownMarking(t *testing.T) {
	var hits atomic.Int64
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	cl := NewClient(srv.URL,
		WithRetries(0),
		WithEndpointDown(2, 150*time.Millisecond),
	)
	ctx := context.Background()

	// Two consecutive 5xx failures trip the mark.
	for i := 0; i < 2; i++ {
		if err := cl.Healthz(ctx); err == nil {
			t.Fatal("expected failure from 500ing server")
		}
	}
	st := cl.Stats()
	if !st.Down || st.MarkedDown != 1 {
		t.Fatalf("stats after threshold failures: %+v", st)
	}

	// Down window: requests fail fast with ErrEndpointDown, no wire hit.
	wireBefore := hits.Load()
	err := cl.Healthz(ctx)
	if !IsEndpointDown(err) {
		t.Fatalf("expected ErrEndpointDown, got %v", err)
	}
	if hits.Load() != wireBefore {
		t.Fatal("down-marked client still hit the wire")
	}

	// After the TTL one request probes through; the server is healthy
	// again, so the mark clears and traffic flows.
	healthy.Store(true)
	time.Sleep(160 * time.Millisecond)
	if err := cl.Healthz(ctx); err != nil {
		t.Fatalf("probe after TTL: %v", err)
	}
	if st := cl.Stats(); st.Down {
		t.Fatalf("endpoint still marked down after successful probe: %+v", st)
	}
	if err := cl.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
}

// ProbeHealth bypasses the down gate so a health prober can observe
// recovery before the TTL expires.
func TestClientProbeHealthBypassesDownGate(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	cl := NewClient(srv.URL, WithRetries(0), WithEndpointDown(1, time.Hour))
	ctx := context.Background()
	if err := cl.Healthz(ctx); err == nil {
		t.Fatal("expected failure")
	}
	if !cl.Stats().Down {
		t.Fatal("endpoint not marked down")
	}
	healthy.Store(true)
	// The hour-long TTL has not expired, but the probe goes through and
	// clears the mark.
	if err := cl.ProbeHealth(ctx); err != nil {
		t.Fatal(err)
	}
	if cl.Stats().Down {
		t.Fatal("successful probe did not clear the down mark")
	}
	if err := cl.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
}

// Caller cancellation must not count toward down-marking: a hedging
// router cancels loser legs to healthy replicas routinely.
func TestClientCancellationDoesNotMarkDown(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	defer close(release)

	cl := NewClient(srv.URL, WithRetries(0), WithEndpointDown(1, time.Hour))
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		if err := cl.Healthz(ctx); err == nil {
			t.Fatal("expected cancellation error")
		}
		cancel()
	}
	if st := cl.Stats(); st.Down {
		t.Fatalf("cancelled requests marked the endpoint down: %+v", st)
	}
}

// The client's attempt/failure counters move with traffic.
func TestClientStatsCounters(t *testing.T) {
	var fail atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	cl := NewClient(srv.URL, WithRetries(1), WithBackoff(time.Millisecond, 2*time.Millisecond))
	ctx := context.Background()
	if err := cl.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	fail.Store(true)
	if err := cl.Healthz(ctx); err == nil {
		t.Fatal("expected failure")
	}
	st := cl.Stats()
	if st.Endpoint != srv.URL {
		t.Fatalf("stats endpoint %q, want %q", st.Endpoint, srv.URL)
	}
	// 1 success + (1 attempt + 1 retry) for the failure.
	if st.Attempts != 3 {
		t.Fatalf("attempts %d, want 3", st.Attempts)
	}
	if st.Failures != 1 {
		t.Fatalf("failures %d, want 1", st.Failures)
	}
	if st.Retries != 1 {
		t.Fatalf("retries %d, want 1", st.Retries)
	}
}

// PUT /v1/repair installs a verified good copy over a damaged one and
// clears the quarantine; a garbage payload is refused with 422 and the
// store keeps serving what it had.
func TestRepairEndpointAcceptAndReject(t *testing.T) {
	contents, cols := testCorpus(t)
	const name = "t/i.btr"
	good := contents[name]

	// Start the store with a damaged copy of one file.
	ix, err := btrblocks.ParseColumnIndex(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[ix.Blocks[1].DataOffset()] ^= 0xFF
	damaged := make(map[string][]byte, len(contents))
	for k, v := range contents {
		damaged[k] = v
	}
	damaged[name] = bad

	store, err := NewStore(damaged, Config{QuarantineThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	srv := httptest.NewServer(NewServer(store))
	t.Cleanup(srv.Close)
	cl := NewClient(srv.URL)
	ctx := context.Background()

	if _, err := cl.Block(ctx, name, 1); !IsBlockDamage(err) {
		t.Fatalf("damaged store served block 1: %v", err)
	}

	// A garbage payload is refused and nothing changes.
	if _, err := cl.Repair(ctx, name, []byte("not a container")); err == nil {
		t.Fatal("garbage repair payload accepted")
	} else if !IsBlockDamage(err) {
		t.Fatalf("garbage repair: expected 422, got %v", err)
	}
	// A payload that is a container but fails deep verification is also
	// refused.
	if _, err := cl.Repair(ctx, name, bad); err == nil {
		t.Fatal("damaged repair payload accepted")
	}
	if _, err := cl.Block(ctx, name, 1); !IsBlockDamage(err) {
		t.Fatalf("rejected repairs changed the store: %v", err)
	}

	// The good copy installs, heals the block, and clears quarantine.
	res, err := cl.Repair(ctx, name, good)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "accepted" || res.Bytes != len(good) {
		t.Fatalf("repair result %+v", res)
	}
	col := cols[name]
	meta, err := cl.FileMeta(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for b := 0; b < meta.Blocks; b++ {
		blk, err := cl.Block(ctx, name, b)
		if err != nil {
			t.Fatalf("block %d after repair: %v", b, err)
		}
		rows += blk.Rows
	}
	if rows != col.Len() {
		t.Fatalf("repaired file covers %d rows, want %d", rows, col.Len())
	}
	raw, err := cl.Raw(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(good) {
		t.Fatal("repaired bytes differ from the pushed copy")
	}
}
