package blockstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"btrblocks/internal/obs"
)

// Server is the HTTP surface of a Store:
//
//	GET /healthz                          liveness
//	GET /v1/files[?file=NAME]             hosted-file metadata (JSON)
//	GET /v1/raw/NAME                      raw file bytes; honors Range
//	GET /v1/block?file=N&block=I          decompressed block
//	    [&format=json|binary]             (default json; binary = BTBK)
//	GET /v1/count-eq?file=N&value=V       pushed-down equality predicate
//	POST /v1/query                        JSON query plan over column files
//	GET /v1/trace/NAME[?block=I]          cascade decision trace (JSON)
//	GET /v1/telemetry                     cache + library telemetry (JSON)
//	GET /metrics                          Prometheus text exposition
//	PUT /v1/repair/NAME                   install a verified replacement copy
//
// The raw endpoint is the S3-style path: compute nodes that want to run
// their own decoder fetch byte ranges, exactly as against an object
// store. The block endpoint moves decompression server-side, through the
// block cache. The count-eq endpoint pushes the predicate all the way
// down: OneValue/RLE/Dict blocks are answered without decompression via
// the scan fast paths. The trace endpoint re-derives the scheme
// selection of a served column, block by block, for debugging.
type Server struct {
	store   *Store
	mux     *http.ServeMux
	handler http.Handler
	log     *slog.Logger
	timeout time.Duration
	spans   *obs.SpanRecorder
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLogger installs a structured request logger: one slog record per
// request with the request ID, route, status, and duration. nil (the
// default) disables request logging.
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) { s.log = l }
}

// WithRequestTimeout bounds every request: handlers that exceed d are
// cut off with 503 Service Unavailable (via http.TimeoutHandler) and
// their request context is canceled. Zero (the default) disables the
// bound.
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.timeout = d }
}

// WithSpans installs a span recorder: every request runs under a server
// span (continuing an inbound W3C traceparent when present), handlers
// record child spans for cache lookups, block decodes, and per-block
// scan tasks, and GET /v1/spans serves the retained spans. nil (the
// default) disables span recording with zero overhead.
func WithSpans(r *obs.SpanRecorder) ServerOption {
	return func(s *Server) { s.spans = r }
}

// Spans returns the server's span recorder (nil when disabled).
func (s *Server) Spans() *obs.SpanRecorder { return s.spans }

// NewServer wraps a store.
func NewServer(store *Store, opts ...ServerOption) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	s.handle("/healthz", s.handleHealthz)
	s.handle("/v1/files", s.handleFiles)
	s.handle("/v1/raw/", s.handleRaw)
	s.handle("/v1/block", s.handleBlock)
	s.handle("/v1/count-eq", s.handleCountEq)
	s.handle("/v1/trace/", s.handleTrace)
	s.handle("/v1/telemetry", s.handleTelemetry)
	s.handle("/v1/spans", s.handleSpans)
	s.handle("/metrics", s.handleMetrics)
	s.handleWith("/v1/query", s.handleQuery, http.MethodPost)
	s.handleWith("/v1/invalidate/", s.handleInvalidate, http.MethodPost)
	s.handleWith("/v1/repair/", s.handleRepair, http.MethodPut, http.MethodPost)
	s.handler = s.mux
	if s.timeout > 0 {
		s.handler = http.TimeoutHandler(s.mux, s.timeout, "request timed out")
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// handle registers a route with the observability middleware: in-flight
// gauge, request/error counters, the latency histogram (all per route),
// a request ID issued per request and echoed as X-Request-ID, and — when
// a logger is installed — one structured log record per request.
func (s *Server) handle(route string, h http.HandlerFunc) {
	s.handleWith(route, h, http.MethodGet, http.MethodHead)
}

// handleWith is handle with an explicit method allowlist; mutating
// routes (invalidation) use it to accept POST instead of GET.
func (s *Server) handleWith(route string, h http.HandlerFunc, methods ...string) {
	m := s.store.Metrics()
	ep := m.Endpoint(route)
	allowed := make(map[string]bool, len(methods))
	for _, meth := range methods {
		allowed[meth] = true
	}
	s.mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
		if !allowed[r.Method] {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		// An inbound X-Request-ID (e.g. from btringest's invalidation push)
		// is kept so the originator's ID shows up in this server's logs;
		// only requests without one mint a fresh ID.
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		ctx := obs.WithRequestID(r.Context(), rid)
		// Continue an inbound trace (W3C traceparent) or start a fresh one;
		// nil recorder makes both no-ops.
		ctx, span := s.spans.StartRemote(ctx, "btrserved"+route, r.Header.Get(obs.TraceparentHeader))
		span.SetAttr("request_id", rid)
		r = r.WithContext(ctx)
		m.InFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		ep.Latency.Observe(elapsed)
		ep.Requests.Add(1)
		if sw.status/100 != 2 && sw.status != http.StatusPartialContent &&
			sw.status != http.StatusNotModified {
			ep.Errors.Add(1)
			span.SetError(fmt.Errorf("status %d", sw.status))
		}
		span.SetAttrInt("status", int64(sw.status))
		span.End()
		m.InFlight.Add(-1)
		if s.log != nil {
			s.log.Info("request",
				"request_id", rid,
				"route", route,
				"method", r.Method,
				"path", r.URL.RequestURI(),
				"status", sw.status,
				"duration_us", elapsed.Microseconds(),
			)
		}
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// fail maps a store error to an HTTP status. The damage statuses are
// distinct so clients can tell block-level loss (422 corrupt, 410
// quarantined — skip the block, keep scanning) from request errors.
func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case IsNotFound(err):
		http.Error(w, err.Error(), http.StatusNotFound)
	case IsQuarantined(err):
		http.Error(w, err.Error(), http.StatusGone)
	case IsCorrupt(err):
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func fileMeta(f *File) FileMeta {
	meta := FileMeta{
		Name:  f.Name,
		Bytes: len(f.Data),
		Kind:  f.Kind,
		Rows:  f.Rows,
	}
	if f.Index != nil {
		meta.Type = f.Index.Type.String()
		meta.Blocks = len(f.Index.Blocks)
	}
	return meta
}

func (s *Server) handleFiles(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("file"); name != "" {
		f := s.store.File(name)
		if f == nil {
			s.fail(w, errNotFound)
			return
		}
		writeJSON(w, []FileMeta{fileMeta(f)})
		return
	}
	files := s.store.Files()
	out := make([]FileMeta, len(files))
	for i, f := range files {
		out[i] = fileMeta(f)
	}
	writeJSON(w, out)
}

func (s *Server) handleRaw(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/raw/")
	f := s.store.File(name)
	if f == nil {
		s.fail(w, errNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, read := obs.StartChild(r.Context(), "file.read")
	read.SetAttr("file", name)
	read.SetAttrInt("bytes", int64(len(f.Data)))
	// ServeContent provides Range (206), If-Modified-Since and HEAD.
	http.ServeContent(w, r, "", s.store.ModTime(), bytes.NewReader(f.Data))
	read.End()
}

func (s *Server) handleBlock(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("file")
	if name == "" {
		http.Error(w, "missing file parameter", http.StatusBadRequest)
		return
	}
	idx, err := strconv.Atoi(q.Get("block"))
	if err != nil {
		http.Error(w, "missing or bad block parameter", http.StatusBadRequest)
		return
	}
	blk, err := s.store.BlockContext(r.Context(), name, idx)
	if err != nil {
		s.fail(w, err)
		return
	}
	switch q.Get("format") {
	case "", "json":
		writeJSON(w, blockPayload(blk))
	case "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(encodeBlockBinary(blk))
	default:
		http.Error(w, "format must be json or binary", http.StatusBadRequest)
	}
}

func (s *Server) handleCountEq(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("file")
	if name == "" {
		http.Error(w, "missing file parameter", http.StatusBadRequest)
		return
	}
	if !q.Has("value") {
		http.Error(w, "missing value parameter", http.StatusBadRequest)
		return
	}
	value := q.Get("value")
	start := time.Now()
	count, typ, err := s.store.CountEqualContext(r.Context(), name, value)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, CountEqResult{
		File:  name,
		Type:  typ.String(),
		Value: value,
		Count: count,
		Nanos: time.Since(start).Nanoseconds(),
	})
}

// handleTrace serves /v1/trace/NAME[?block=I]: the cascade decision
// trace of one block, or of every block when the parameter is absent.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if name == "" {
		http.Error(w, "missing file name", http.StatusBadRequest)
		return
	}
	idx := -1
	if v := r.URL.Query().Get("block"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad block parameter", http.StatusBadRequest)
			return
		}
		idx = n
	}
	tr, err := s.store.Trace(name, idx)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, tr)
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	m := s.store.Metrics()
	report := TelemetryReport{Cache: m.Cache(), Endpoints: m.Endpoints()}
	if opt := s.store.Options(); opt != nil && opt.Telemetry.Enabled() {
		snap := opt.Telemetry.Snapshot()
		snap.Events = nil // bound the payload; aggregates carry the story
		report.Telemetry = &snap
	}
	if s.spans.Enabled() {
		report.SpanExemplars = s.spans.Exemplars()
		st := s.spans.Stats()
		report.Spans = &st
	}
	writeJSON(w, report)
}

// handleSpans serves GET /v1/spans: the retained spans as a versioned
// SpanSet, optionally filtered by ?trace=TRACE_ID and ?min_dur=DURATION
// (a Go duration literal like 5ms). 404 when span recording is off, so
// operators can tell "disabled" from "nothing recorded".
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if !s.spans.Enabled() {
		http.Error(w, "span recording disabled", http.StatusNotFound)
		return
	}
	var f obs.SpanFilter
	q := r.URL.Query()
	f.TraceID = q.Get("trace")
	if v := q.Get("min_dur"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			http.Error(w, "bad min_dur parameter", http.StatusBadRequest)
			return
		}
		f.MinDuration = d
	}
	writeJSON(w, s.spans.Snapshot(f))
}

// handleInvalidate serves POST /v1/invalidate/NAME: drop cached state
// for the named file and reload it from the backing directory — the
// cross-process hook a writer (btringest) calls after atomically
// replacing a served file. Responds with the file's post-invalidation
// status: "reloaded" when it is (still) served, "removed" when it no
// longer exists.
func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/invalidate/")
	if name == "" {
		http.Error(w, "missing file name", http.StatusBadRequest)
		return
	}
	_, inv := obs.StartChild(r.Context(), "store.invalidate")
	inv.SetAttr("file", name)
	s.store.Invalidate(name)
	inv.End()
	status := "removed"
	if s.store.File(name) != nil {
		status = "reloaded"
	}
	writeJSON(w, InvalidateResult{File: name, Status: status})
}

// maxRepairBytes bounds a repair payload; column files are far smaller,
// and an unbounded body would let one bad push exhaust memory.
const maxRepairBytes = 1 << 30

// handleRepair serves PUT /v1/repair/NAME: install a pushed replacement
// copy of a file after verifying every checksum and payload — the
// receiving half of cross-replica repair. A payload that fails
// verification is refused with 422 and changes nothing.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/repair/")
	if name == "" {
		http.Error(w, "missing file name", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRepairBytes))
	if err != nil {
		http.Error(w, "reading repair payload: "+err.Error(), http.StatusBadRequest)
		return
	}
	_, rep := obs.StartChild(r.Context(), "store.repair")
	rep.SetAttr("file", name)
	rep.SetAttrInt("bytes", int64(len(data)))
	err = s.store.AcceptRepair(name, data)
	rep.SetError(err)
	rep.End()
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, RepairResult{File: name, Bytes: len(data), Status: "accepted"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.store.Metrics().WriteTo(w)
	s.spans.WritePromLines(w, "btrserved")
}
