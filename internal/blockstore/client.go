package blockstore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"btrblocks"
	"btrblocks/internal/obs"
	"btrblocks/internal/query"
)

// Client is the Go consumer of a blockstore Server. Zero-allocation it is
// not — it is the reference implementation of the wire protocol and the
// engine behind the `btrbench serve` experiment.
//
// The client is fault-tolerant by default: transport errors, truncated
// bodies and 5xx responses are retried with capped exponential backoff
// and jitter up to a per-request retry budget, while 4xx responses —
// including the damage statuses 422 (corrupt) and 410 (quarantined) —
// fail immediately, because retrying damaged bytes cannot help. Backoff
// sleeps respect the request context.
type Client struct {
	base        string
	http        *http.Client
	maxRetries  int           // retries after the first attempt
	backoffBase time.Duration // first backoff step
	backoffMax  time.Duration // cap per step
	reqTimeout  time.Duration // per-attempt deadline (0 = none)

	// Endpoint down-marking (the client-side mirror of the store's
	// block quarantine): after downThreshold consecutive transport-level
	// request failures the endpoint is marked down and every call fails
	// fast with ErrEndpointDown — no retries, no backoff sleeps — until
	// downTTL elapses, when exactly one caller gets through to re-probe.
	// Zero threshold (the default) disables the machinery.
	downThreshold int
	downTTL       time.Duration

	retries    atomic.Int64
	attempts   atomic.Int64  // individual HTTP attempts issued
	failures   atomic.Int64  // requests that exhausted their retry budget
	consecFail atomic.Int64  // consecutive failed requests (transport/5xx)
	downUntil  atomic.Int64  // unixnano the down window ends; 0 = up
	markedDown atomic.Int64  // times the endpoint was marked down
	backoffs   obs.Histogram // distribution of backoff sleeps
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient replaces the underlying *http.Client (e.g. to install a
// fault-injecting transport).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithRetries sets the per-request retry budget: how many times a failed
// attempt is retried (default 3; negative disables retrying).
func WithRetries(n int) ClientOption {
	return func(c *Client) {
		if n < 0 {
			n = 0
		}
		c.maxRetries = n
	}
}

// WithBackoff sets the exponential backoff schedule: base doubles per
// retry up to max, each step jittered by up to 50%. The defaults are
// 20ms base, 1s cap.
func WithBackoff(base, max time.Duration) ClientOption {
	return func(c *Client) { c.backoffBase, c.backoffMax = base, max }
}

// WithAttemptTimeout bounds each individual attempt (the caller's
// context still bounds the whole request including backoff sleeps).
func WithAttemptTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.reqTimeout = d }
}

// WithEndpointDown enables endpoint down-marking: after threshold
// consecutive failed requests (transport errors or 5xx — responses the
// server never gave or could not give) the endpoint is marked down for
// ttl, and every call during the window fails immediately with
// ErrEndpointDown instead of burning its retry budget against a dead
// host. When the TTL expires one caller is let through as a probe;
// success clears the mark, failure re-arms the window. This reuses the
// store quarantine's TTL re-probe shape on the client side. threshold
// <= 0 disables (the default).
func WithEndpointDown(threshold int, ttl time.Duration) ClientOption {
	return func(c *Client) {
		c.downThreshold = threshold
		c.downTTL = ttl
	}
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). It uses http.DefaultClient's transport, which
// pools connections per host.
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:        base,
		http:        &http.Client{},
		maxRetries:  3,
		backoffBase: 20 * time.Millisecond,
		backoffMax:  time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ClientStats reports the client's fault-handling counters. With
// several clients (one per cluster node) the Endpoint field tells the
// per-endpoint series apart.
type ClientStats struct {
	// Endpoint is the base URL this client talks to.
	Endpoint string `json:"endpoint"`
	// Retries is the total number of retried attempts.
	Retries int64 `json:"retries"`
	// Attempts is the total number of individual HTTP attempts issued
	// (first tries and retries alike).
	Attempts int64 `json:"attempts"`
	// Failures is the number of requests that failed after exhausting
	// their retry budget.
	Failures int64 `json:"failures"`
	// Down reports whether the endpoint is currently marked down.
	Down bool `json:"down"`
	// MarkedDown is how many times the endpoint transitioned to down.
	MarkedDown int64 `json:"marked_down"`
	// Backoff is the distribution of backoff sleeps.
	Backoff obs.HistogramSnapshot `json:"backoff"`
}

// Stats returns a snapshot of the client's retry behavior.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Endpoint:   c.base,
		Retries:    c.retries.Load(),
		Attempts:   c.attempts.Load(),
		Failures:   c.failures.Load(),
		Down:       c.isDown(),
		MarkedDown: c.markedDown.Load(),
		Backoff:    c.backoffs.Snapshot(),
	}
}

// Endpoint returns the base URL this client talks to.
func (c *Client) Endpoint() string { return c.base }

// ErrEndpointDown is returned without issuing a request while the
// endpoint is marked down (see WithEndpointDown).
var ErrEndpointDown = errors.New("blockstore: endpoint marked down")

// IsEndpointDown reports whether err is the client failing fast on a
// down-marked endpoint.
func IsEndpointDown(err error) bool { return errors.Is(err, ErrEndpointDown) }

// isDown reports whether the endpoint is inside a down window.
func (c *Client) isDown() bool {
	until := c.downUntil.Load()
	return until != 0 && time.Now().UnixNano() < until
}

// gateDown fails fast while the endpoint is marked down. When the down
// TTL has expired, exactly one caller wins the CAS and proceeds as the
// re-probe (the window is pushed forward so concurrent callers keep
// failing fast until the probe resolves).
func (c *Client) gateDown() error {
	if c.downThreshold <= 0 {
		return nil
	}
	until := c.downUntil.Load()
	if until == 0 {
		return nil
	}
	now := time.Now().UnixNano()
	if now >= until && c.downUntil.CompareAndSwap(until, now+int64(c.downTTL)) {
		return nil // this caller is the probe
	}
	return fmt.Errorf("%w: %s", ErrEndpointDown, c.base)
}

// noteOutcome updates the endpoint health ledger after a request (all
// retries spent). Only failures the server never answered — transport
// errors and 5xx — count toward down-marking; a 4xx means the endpoint
// is alive and well. Caller cancellation is neutral: it says nothing
// about the endpoint, and a hedging router cancels loser legs to a
// healthy-but-slower replica routinely — those must not down-mark it.
func (c *Client) noteOutcome(err error) {
	switch {
	case err == nil:
		c.consecFail.Store(0)
		c.downUntil.Store(0)
	case errors.Is(err, context.Canceled):
		// Neither success nor endpoint failure; leave the ledger as is.
	default:
		c.failures.Add(1)
		if c.downThreshold <= 0 || !retryable(err) {
			return
		}
		if c.consecFail.Add(1) >= int64(c.downThreshold) {
			if c.downUntil.Swap(time.Now().Add(c.downTTL).UnixNano()) == 0 {
				c.markedDown.Add(1)
			}
		}
	}
}

// ProbeHealth checks server liveness, bypassing the down fast-fail so
// health probes can notice recovery before the down TTL expires. A
// success clears the down mark.
func (c *Client) ProbeHealth(ctx context.Context) error {
	_, err := c.doGet(ctx, "/healthz")
	c.noteOutcome(err)
	return err
}

// HTTPError is a non-2xx response, preserved with its status code so
// callers can classify failures (e.g. 422 corrupt, 410 quarantined).
type HTTPError struct {
	Status int
	Path   string
	Msg    string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("blockstore: GET %s: %d: %s", e.Path, e.Status, e.Msg)
}

// IsBlockDamage reports whether err is the server saying a specific
// block's bytes are unusable (422 corrupt or 410 quarantined) — the
// failures a degraded scan skips rather than aborts on.
func IsBlockDamage(err error) bool {
	var he *HTTPError
	return errors.As(err, &he) &&
		(he.Status == http.StatusUnprocessableEntity || he.Status == http.StatusGone)
}

// retryable reports whether an attempt's failure may be transient:
// transport errors and 5xx responses are; 4xx responses (the request
// itself is wrong, or the data is damaged) are not. Deadline and
// cancellation errors count as transient here because they may come
// from the per-attempt WithAttemptTimeout deadline — the exact failure
// retries exist for; get() separately stops retrying once the caller's
// own context is done.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status >= 500
	}
	return true // transport-level failure, including attempt timeouts
}

// backoffDelay returns the jittered exponential delay for retry attempt
// n (0-based).
func (c *Client) backoffDelay(n int) time.Duration {
	d := c.backoffBase << n
	if d <= 0 || d > c.backoffMax {
		d = c.backoffMax
	}
	// Up to 50% jitter decorrelates clients hammering a recovering server.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// get issues a GET and fails on any non-2xx status, retrying transient
// failures within the retry budget. While the endpoint is marked down
// it fails fast without touching the network.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	if err := c.gateDown(); err != nil {
		return nil, err
	}
	body, err := c.doGet(ctx, path)
	c.noteOutcome(err)
	return body, err
}

// doGet is the retry loop behind get, without the endpoint health
// bookkeeping (ProbeHealth shares it to bypass the down gate).
func (c *Client) doGet(ctx context.Context, path string) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		body, err := c.getOnce(ctx, path)
		if err == nil {
			return body, nil
		}
		lastErr = err
		// ctx here is the caller's context: when it is done the whole
		// request is over, but an attempt that failed on its own child
		// deadline (WithAttemptTimeout) is still worth retrying.
		if attempt >= c.maxRetries || ctx.Err() != nil || !retryable(err) {
			break
		}
		delay := c.backoffDelay(attempt)
		c.retries.Add(1)
		c.backoffs.Observe(delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// getOnce is a single attempt, bounded by the per-attempt timeout.
func (c *Client) getOnce(ctx context.Context, path string) ([]byte, error) {
	c.attempts.Add(1)
	if c.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.reqTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	// Propagate the caller's trace (W3C traceparent) and request ID so the
	// server's span joins this trace and its logs carry our request ID.
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, &HTTPError{Status: resp.StatusCode, Path: path, Msg: firstLine(body)}
	}
	return body, nil
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.get(ctx, "/healthz")
	return err
}

// Files lists the hosted files.
func (c *Client) Files(ctx context.Context) ([]FileMeta, error) {
	body, err := c.get(ctx, "/v1/files")
	if err != nil {
		return nil, err
	}
	var out []FileMeta
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/files response: %v", err)
	}
	return out, nil
}

// FileMeta fetches metadata for one file.
func (c *Client) FileMeta(ctx context.Context, name string) (*FileMeta, error) {
	body, err := c.get(ctx, "/v1/files?file="+url.QueryEscape(name))
	if err != nil {
		return nil, err
	}
	var out []FileMeta
	if err := json.Unmarshal(body, &out); err != nil || len(out) != 1 {
		return nil, fmt.Errorf("blockstore: bad /v1/files response for %s", name)
	}
	return &out[0], nil
}

// Raw fetches a file's raw compressed bytes.
func (c *Client) Raw(ctx context.Context, name string) ([]byte, error) {
	return c.get(ctx, "/v1/raw/"+rawPath(name))
}

// RawRange fetches length bytes starting at off, via an HTTP Range
// request — the S3-style access path.
func (c *Client) RawRange(ctx context.Context, name string, off, length int64) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/raw/"+rawPath(name), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+length-1))
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusPartialContent {
		return nil, fmt.Errorf("blockstore: range GET %s: %s", name, resp.Status)
	}
	return body, nil
}

// rawPath escapes a store-relative name for use under /v1/raw/ while
// keeping its slashes as path separators.
func rawPath(name string) string {
	return (&url.URL{Path: name}).EscapedPath()
}

// Block fetches one decompressed block in the binary wire format.
func (c *Client) Block(ctx context.Context, name string, idx int) (*BlockValues, error) {
	body, err := c.get(ctx, "/v1/block?format=binary&file="+url.QueryEscape(name)+"&block="+strconv.Itoa(idx))
	if err != nil {
		return nil, err
	}
	blk, err := decodeBlockBinary(name, body)
	if err != nil {
		return nil, err
	}
	blk.Block = idx
	return blk, nil
}

// BlockJSON fetches one decompressed block in the JSON wire format.
func (c *Client) BlockJSON(ctx context.Context, name string, idx int) (*BlockValues, error) {
	body, err := c.get(ctx, "/v1/block?format=json&file="+url.QueryEscape(name)+"&block="+strconv.Itoa(idx))
	if err != nil {
		return nil, err
	}
	var p BlockPayload
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/block response: %v", err)
	}
	return p.Values()
}

// CountEq pushes an equality predicate down to the server.
func (c *Client) CountEq(ctx context.Context, name, value string) (*CountEqResult, error) {
	body, err := c.get(ctx, "/v1/count-eq?file="+url.QueryEscape(name)+"&value="+url.QueryEscape(value))
	if err != nil {
		return nil, err
	}
	out := &CountEqResult{}
	if err := json.Unmarshal(body, out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/count-eq response: %v", err)
	}
	return out, nil
}

// Trace fetches the cascade decision trace of one block (or the whole
// column when block < 0).
func (c *Client) Trace(ctx context.Context, name string, block int) (*btrblocks.DecisionTrace, error) {
	path := "/v1/trace/" + rawPath(name)
	if block >= 0 {
		path += "?block=" + strconv.Itoa(block)
	}
	body, err := c.get(ctx, path)
	if err != nil {
		return nil, err
	}
	out := &btrblocks.DecisionTrace{}
	if err := json.Unmarshal(body, out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/trace response: %v", err)
	}
	return out, nil
}

// Telemetry fetches the server's cache and library telemetry.
func (c *Client) Telemetry(ctx context.Context) (*TelemetryReport, error) {
	body, err := c.get(ctx, "/v1/telemetry")
	if err != nil {
		return nil, err
	}
	out := &TelemetryReport{}
	if err := json.Unmarshal(body, out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/telemetry response: %v", err)
	}
	return out, nil
}

// Spans fetches the server's retained spans, optionally filtered by
// trace ID and minimum duration (zero values disable each filter).
func (c *Client) Spans(ctx context.Context, traceID string, minDur time.Duration) (*obs.SpanSet, error) {
	path := "/v1/spans"
	q := url.Values{}
	if traceID != "" {
		q.Set("trace", traceID)
	}
	if minDur > 0 {
		q.Set("min_dur", minDur.String())
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	body, err := c.get(ctx, path)
	if err != nil {
		return nil, err
	}
	out := &obs.SpanSet{}
	if err := json.Unmarshal(body, out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/spans response: %v", err)
	}
	return out, nil
}

// Invalidate tells the server to drop cached state for a file and
// reload it from its backing directory — called by writers (btringest)
// after atomically replacing a served file. Not retried: invalidation
// is idempotent but the caller decides whether a failure matters.
func (c *Client) Invalidate(ctx context.Context, name string) (*InvalidateResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/invalidate/"+rawPath(name), nil)
	if err != nil {
		return nil, err
	}
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, &HTTPError{Status: resp.StatusCode, Path: "/v1/invalidate/" + name, Msg: firstLine(body)}
	}
	out := &InvalidateResult{}
	if err := json.Unmarshal(body, out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/invalidate response: %v", err)
	}
	return out, nil
}

// Repair pushes a verified replacement copy of a file to the server
// via PUT /v1/repair/NAME — the cross-replica healing path: a router
// that fetched good bytes from one replica re-pushes them to a replica
// whose copy failed its CRC. The server re-verifies before accepting,
// so a damaged payload cannot displace a good copy. Not retried: the
// repair loop owns scheduling and backoff.
func (c *Client) Repair(ctx context.Context, name string, data []byte) (*RepairResult, error) {
	c.attempts.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/v1/repair/"+rawPath(name), bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, &HTTPError{Status: resp.StatusCode, Path: "/v1/repair/" + name, Msg: firstLine(body)}
	}
	out := &RepairResult{}
	if err := json.Unmarshal(body, out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/repair response: %v", err)
	}
	return out, nil
}

// Query executes a JSON query plan via POST /v1/query. Not retried: a
// 400 means the plan is wrong, and scatter layers (btrrouted) own their
// failover policy across replicas.
func (c *Client) Query(ctx context.Context, p *query.Plan) (*query.Result, error) {
	payload, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("blockstore: encoding plan: %v", err)
	}
	c.attempts.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, &HTTPError{Status: resp.StatusCode, Path: "/v1/query", Msg: firstLine(body)}
	}
	out := &query.Result{}
	if err := json.Unmarshal(body, out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/query response: %v", err)
	}
	return out, nil
}

// MetricsText fetches the raw Prometheus exposition.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	body, err := c.get(ctx, "/metrics")
	return string(body), err
}

// ScanResult is the outcome of a column scan that degrades gracefully:
// damaged blocks are skipped and reported instead of aborting the scan.
type ScanResult struct {
	// Rows and Bytes sum over the healthy blocks received.
	Rows  int
	Bytes int64
	// Blocks is the number of healthy blocks received.
	Blocks int
	// FailedBlocks lists the indices the server refused as damaged (422
	// corrupt or 410 quarantined), in ascending order.
	FailedBlocks []int
	// Partial reports whether any block was lost: the row total covers
	// only part of the column.
	Partial bool
}

// ScanColumn fetches every block of a served column with the given number
// of concurrent workers (<= 0 means 1) and returns the total rows and
// decompressed bytes received. Blocks travel in the binary wire format;
// the first error — including block damage — fails the scan. Use
// ScanColumnPartial to skip damaged blocks instead.
func (c *Client) ScanColumn(ctx context.Context, name string, workers int) (rows int, bytes int64, err error) {
	res, err := c.scanColumn(ctx, name, workers, false)
	if err != nil {
		return 0, 0, err
	}
	return res.Rows, res.Bytes, nil
}

// ScanColumnPartial fetches every block of a served column, skipping
// blocks the server reports as damaged (corrupt or quarantined) and
// marking the result partial — graceful degradation for scans over
// columns with localized damage. Any other failure aborts the scan.
func (c *Client) ScanColumnPartial(ctx context.Context, name string, workers int) (*ScanResult, error) {
	return c.scanColumn(ctx, name, workers, true)
}

func (c *Client) scanColumn(ctx context.Context, name string, workers int, skipDamage bool) (*ScanResult, error) {
	meta, err := c.FileMeta(ctx, name)
	if err != nil {
		return nil, err
	}
	if meta.Blocks == 0 {
		return nil, fmt.Errorf("blockstore: %s has no addressable blocks", name)
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > meta.Blocks {
		workers = meta.Blocks
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		gotRows  atomic.Int64
		gotBytes atomic.Int64
		gotBlks  atomic.Int64
		failedMu sync.Mutex
		failed   []int
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= meta.Blocks || ctx.Err() != nil {
					return
				}
				blk, err := c.Block(ctx, name, idx)
				if err != nil {
					if skipDamage && IsBlockDamage(err) {
						failedMu.Lock()
						failed = append(failed, idx)
						failedMu.Unlock()
						continue
					}
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
				gotRows.Add(int64(blk.Rows))
				gotBytes.Add(int64(blk.UncompressedBytes()))
				gotBlks.Add(1)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Ints(failed)
	return &ScanResult{
		Rows:         int(gotRows.Load()),
		Bytes:        gotBytes.Load(),
		Blocks:       int(gotBlks.Load()),
		FailedBlocks: failed,
		Partial:      len(failed) > 0,
	}, nil
}
