package blockstore

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"

	"btrblocks"
)

// Client is the Go consumer of a blockstore Server. Zero-allocation it is
// not — it is the reference implementation of the wire protocol and the
// engine behind the `btrbench serve` experiment.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). It uses http.DefaultClient's transport, which
// pools connections per host.
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{}}
}

// get issues a GET and fails on any non-2xx status.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("blockstore: GET %s: %s: %s", path, resp.Status, firstLine(body))
	}
	return body, nil
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.get(ctx, "/healthz")
	return err
}

// Files lists the hosted files.
func (c *Client) Files(ctx context.Context) ([]FileMeta, error) {
	body, err := c.get(ctx, "/v1/files")
	if err != nil {
		return nil, err
	}
	var out []FileMeta
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/files response: %v", err)
	}
	return out, nil
}

// FileMeta fetches metadata for one file.
func (c *Client) FileMeta(ctx context.Context, name string) (*FileMeta, error) {
	body, err := c.get(ctx, "/v1/files?file="+url.QueryEscape(name))
	if err != nil {
		return nil, err
	}
	var out []FileMeta
	if err := json.Unmarshal(body, &out); err != nil || len(out) != 1 {
		return nil, fmt.Errorf("blockstore: bad /v1/files response for %s", name)
	}
	return &out[0], nil
}

// Raw fetches a file's raw compressed bytes.
func (c *Client) Raw(ctx context.Context, name string) ([]byte, error) {
	return c.get(ctx, "/v1/raw/"+rawPath(name))
}

// RawRange fetches length bytes starting at off, via an HTTP Range
// request — the S3-style access path.
func (c *Client) RawRange(ctx context.Context, name string, off, length int64) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/raw/"+rawPath(name), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+length-1))
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusPartialContent {
		return nil, fmt.Errorf("blockstore: range GET %s: %s", name, resp.Status)
	}
	return body, nil
}

// rawPath escapes a store-relative name for use under /v1/raw/ while
// keeping its slashes as path separators.
func rawPath(name string) string {
	return (&url.URL{Path: name}).EscapedPath()
}

// Block fetches one decompressed block in the binary wire format.
func (c *Client) Block(ctx context.Context, name string, idx int) (*BlockValues, error) {
	body, err := c.get(ctx, "/v1/block?format=binary&file="+url.QueryEscape(name)+"&block="+strconv.Itoa(idx))
	if err != nil {
		return nil, err
	}
	blk, err := decodeBlockBinary(name, body)
	if err != nil {
		return nil, err
	}
	blk.Block = idx
	return blk, nil
}

// BlockJSON fetches one decompressed block in the JSON wire format.
func (c *Client) BlockJSON(ctx context.Context, name string, idx int) (*BlockValues, error) {
	body, err := c.get(ctx, "/v1/block?format=json&file="+url.QueryEscape(name)+"&block="+strconv.Itoa(idx))
	if err != nil {
		return nil, err
	}
	var p BlockPayload
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/block response: %v", err)
	}
	return p.Values()
}

// CountEq pushes an equality predicate down to the server.
func (c *Client) CountEq(ctx context.Context, name, value string) (*CountEqResult, error) {
	body, err := c.get(ctx, "/v1/count-eq?file="+url.QueryEscape(name)+"&value="+url.QueryEscape(value))
	if err != nil {
		return nil, err
	}
	out := &CountEqResult{}
	if err := json.Unmarshal(body, out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/count-eq response: %v", err)
	}
	return out, nil
}

// Trace fetches the cascade decision trace of one block (or the whole
// column when block < 0).
func (c *Client) Trace(ctx context.Context, name string, block int) (*btrblocks.DecisionTrace, error) {
	path := "/v1/trace/" + rawPath(name)
	if block >= 0 {
		path += "?block=" + strconv.Itoa(block)
	}
	body, err := c.get(ctx, path)
	if err != nil {
		return nil, err
	}
	out := &btrblocks.DecisionTrace{}
	if err := json.Unmarshal(body, out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/trace response: %v", err)
	}
	return out, nil
}

// Telemetry fetches the server's cache and library telemetry.
func (c *Client) Telemetry(ctx context.Context) (*TelemetryReport, error) {
	body, err := c.get(ctx, "/v1/telemetry")
	if err != nil {
		return nil, err
	}
	out := &TelemetryReport{}
	if err := json.Unmarshal(body, out); err != nil {
		return nil, fmt.Errorf("blockstore: bad /v1/telemetry response: %v", err)
	}
	return out, nil
}

// MetricsText fetches the raw Prometheus exposition.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	body, err := c.get(ctx, "/metrics")
	return string(body), err
}

// ScanColumn fetches every block of a served column with the given number
// of concurrent workers (<= 0 means 1) and returns the total rows and
// decompressed bytes received. Blocks travel in the binary wire format;
// the first error cancels the remaining fetches.
func (c *Client) ScanColumn(ctx context.Context, name string, workers int) (rows int, bytes int64, err error) {
	meta, err := c.FileMeta(ctx, name)
	if err != nil {
		return 0, 0, err
	}
	if meta.Blocks == 0 {
		return 0, 0, fmt.Errorf("blockstore: %s has no addressable blocks", name)
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > meta.Blocks {
		workers = meta.Blocks
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		gotRows  atomic.Int64
		gotBytes atomic.Int64
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= meta.Blocks || ctx.Err() != nil {
					return
				}
				blk, err := c.Block(ctx, name, idx)
				if err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
				gotRows.Add(int64(blk.Rows))
				gotBytes.Add(int64(blk.UncompressedBytes()))
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, 0, firstErr
	}
	return int(gotRows.Load()), gotBytes.Load(), nil
}
