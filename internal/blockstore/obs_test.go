package blockstore

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"btrblocks"
	"btrblocks/internal/obs"
)

// lockedBuffer serializes writes so the log sink itself cannot race;
// corruption, if any, would have to come from the logging path.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestServerTraceEndpoint(t *testing.T) {
	_, cl, contents, _ := newTestServer(t, Config{})
	ctx := context.Background()

	for name := range contents {
		tr, err := cl.Trace(ctx, name, -1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ix, err := btrblocks.ParseColumnIndex(contents[name])
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Blocks) != len(ix.Blocks) {
			t.Fatalf("%s: trace has %d blocks, file has %d", name, len(tr.Blocks), len(ix.Blocks))
		}
		// The re-derived winner must match the scheme stored in the file:
		// seeded sampling plus idempotent densification make the
		// re-compression reproduce the original pick.
		for i, bt := range tr.Blocks {
			if bt.Block != i {
				t.Fatalf("%s: trace block %d labeled %d", name, i, bt.Block)
			}
			if got, want := bt.Root.Scheme, ix.Blocks[i].Scheme.String(); got != want {
				t.Errorf("%s block %d: traced winner %s, stored scheme %s", name, i, got, want)
			}
		}
	}

	// Single-block form.
	tr, err := cl.Trace(ctx, "t/i.btr", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) != 1 || tr.Blocks[0].Block != 1 {
		t.Fatalf("single-block trace: %+v", tr.Blocks)
	}

	// Errors: absent file is 404, non-column and bad block are 4xx.
	if _, err := cl.Trace(ctx, "nope.btr", -1); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("missing file: %v", err)
	}
	if _, err := cl.Trace(ctx, "t/i.btr", 99); err == nil {
		t.Fatal("out-of-range block accepted")
	}
}

// TestServerParallelScansWithLogging is the serving-side race satellite:
// concurrent scans and trace requests against a server with slog request
// logging enabled must leave a log in which every line is independently
// parseable JSON carrying a request ID (run under -race in CI tier 2).
func TestServerParallelScansWithLogging(t *testing.T) {
	contents, _ := testCorpus(t)
	store, err := NewStore(contents, Config{PrefetchBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	sink := &lockedBuffer{}
	logger := obs.NewLogger(sink, slog.LevelInfo)
	srv := httptest.NewServer(NewServer(store, WithLogger(logger)))
	t.Cleanup(srv.Close)
	cl := NewClient(srv.URL)
	ctx := context.Background()

	names := make([]string, 0, len(contents))
	for name := range contents {
		names = append(names, name)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := names[w%len(names)]
			if _, _, err := cl.ScanColumn(ctx, name, 3); err != nil {
				t.Error(err)
			}
			if _, err := cl.Trace(ctx, name, 0); err != nil {
				t.Error(err)
			}
			if _, err := cl.Telemetry(ctx); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()

	lines := 0
	sc := bufio.NewScanner(strings.NewReader(sink.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("corrupt log line: %v\n%s", err, line)
		}
		if rec["msg"] == "request" {
			if rid, _ := rec["request_id"].(string); rid == "" {
				t.Fatalf("request log without request_id: %s", line)
			}
			if _, ok := rec["duration_us"]; !ok {
				t.Fatalf("request log without duration: %s", line)
			}
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("no request logs produced")
	}

	// The shared histograms behind those requests render as Prometheus
	// bucket series.
	metrics, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`btrserved_http_request_duration_seconds_bucket{route="/v1/block",le="+Inf"}`,
		`btrserved_http_request_duration_seconds_sum{route="/v1/block"}`,
		`btrserved_http_request_duration_seconds_count{route="/v1/block"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestRequestIDEchoAndPropagation checks the middleware contract: a
// client-sent X-Request-ID is preserved, a missing one is minted, and
// the header always comes back.
func TestRequestIDEchoAndPropagation(t *testing.T) {
	contents, _ := testCorpus(t)
	store, err := NewStore(contents, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	srv := httptest.NewServer(NewServer(store))
	t.Cleanup(srv.Close)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-supplied-1" {
		t.Fatalf("supplied request ID not echoed: %q", got)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got == "" {
		t.Fatal("no request ID minted")
	}
}

// TestTelemetryEndpointsSection checks that /v1/telemetry now carries
// per-route summaries with latency quantiles.
func TestTelemetryEndpointsSection(t *testing.T) {
	_, cl, _, _ := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := cl.Files(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Telemetry(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ep := range rep.Endpoints {
		if ep.Route == "/v1/files" {
			found = true
			if ep.Requests == 0 || ep.Latency.Count == 0 {
				t.Fatalf("/v1/files summary empty: %+v", ep)
			}
		}
	}
	if !found {
		t.Fatalf("no /v1/files entry in endpoints: %+v", rep.Endpoints)
	}
}
