package blockstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"btrblocks"
	"btrblocks/internal/query"
	"btrblocks/metadata"
)

func jsonRaw(s string) json.RawMessage { return json.RawMessage(s) }

// queryCorpus builds a store content map with a sorted timestamp column
// (plus its BTRM sidecar, enabling pruning) and a small value column
// sharing the row space.
func queryCorpus(t *testing.T) (map[string][]byte, []int64) {
	t.Helper()
	const n = 6000
	opt := &btrblocks.Options{BlockSize: 500}
	ts := make([]int64, n)
	vals := make([]int32, n)
	for i := range ts {
		ts[i] = 1_600_000_000_000 + int64(i)*250
		vals[i] = int32(i % 97)
	}
	nulls := btrblocks.NewNullMask()
	for i := 0; i < n; i += 13 {
		nulls.SetNull(i)
	}
	tsCol := btrblocks.Int64Column("ts", ts)
	vCol := btrblocks.IntColumn("v", vals)
	vCol.Nulls = nulls

	contents := make(map[string][]byte)
	for name, col := range map[string]btrblocks.Column{"m/ts.btr": tsCol, "m/v.btr": vCol} {
		data, err := btrblocks.CompressColumn(col, opt)
		if err != nil {
			t.Fatal(err)
		}
		contents[name] = data
	}
	m := metadata.Build(tsCol, opt)
	contents["m/ts.btr"+MetaSuffix] = m.AppendTo(nil)
	return contents, ts
}

func queryStore(t *testing.T, contents map[string][]byte) (*Store, *Client) {
	t.Helper()
	store, err := NewStore(contents, Config{Options: &btrblocks.Options{BlockSize: 500}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	srv := httptest.NewServer(NewServer(store))
	t.Cleanup(srv.Close)
	return store, NewClient(srv.URL)
}

// TestQueryEndpointPruning drives POST /v1/query end to end: a narrow
// range over the sorted timestamp column must answer correctly, skip
// most blocks via the hosted sidecar, and fold its work into the
// btrserved_query_* metrics.
func TestQueryEndpointPruning(t *testing.T) {
	contents, ts := queryCorpus(t)
	store, cl := queryStore(t, contents)

	lo, hi := ts[2100], ts[2599]
	plan := &query.Plan{
		Filter: &query.Node{Op: "range", Column: "m/ts.btr",
			Lo: jsonRaw(fmt.Sprint(lo)), Hi: jsonRaw(fmt.Sprint(hi))},
		Rows: true,
	}
	res, err := cl.Query(t.Context(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 500 || len(res.RowIDs) != 500 || res.RowIDs[0] != 2100 {
		t.Fatalf("matched=%d rows=%d first=%v", res.Matched, len(res.RowIDs), res.RowIDs[:1])
	}
	if res.Stats.BlocksPruned == 0 || res.Stats.BlocksPruned*2 < res.Stats.BlocksTotal {
		t.Fatalf("expected >50%% of blocks pruned, got %+v", res.Stats)
	}
	if res.Stats.BlocksPruned+res.Stats.BlocksScanned != res.Stats.BlocksTotal {
		t.Fatalf("pruned+scanned != total: %+v", res.Stats)
	}
	m := store.Metrics()
	if m.QueryRequests.Load() != 1 || m.QueryBlocksPruned.Load() != res.Stats.BlocksPruned {
		t.Fatalf("metrics not folded: requests=%d pruned=%d",
			m.QueryRequests.Load(), m.QueryBlocksPruned.Load())
	}
}

// TestQueryEndpointStatuses pins the error contract of /v1/query: plan
// problems are 400, an unknown column file is 404, and no body — no
// matter how malformed — produces a 5xx.
func TestQueryEndpointStatuses(t *testing.T) {
	contents, _ := queryCorpus(t)
	_, cl := queryStore(t, contents)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed-json", `{"filter":`, http.StatusBadRequest},
		{"trailing-data", `{"filter":{"op":"notnull","column":"m/v.btr"}}{}`, http.StatusBadRequest},
		{"unknown-field", `{"fitler":{}}`, http.StatusBadRequest},
		{"unknown-op", `{"filter":{"op":"like","column":"m/v.btr","value":"x"}}`, http.StatusBadRequest},
		{"no-columns", `{"rows":true}`, http.StatusBadRequest},
		{"bad-literal", `{"filter":{"op":"eq","column":"m/v.btr","value":3.5}}`, http.StatusBadRequest},
		{"empty-in", `{"filter":{"op":"in","column":"m/v.btr","values":[]}}`, http.StatusBadRequest},
		{"bad-return", `{"filter":{"op":"notnull","column":"m/v.btr"},"return":"rowset"}`, http.StatusBadRequest},
		{"negative-limit", `{"filter":{"op":"notnull","column":"m/v.btr"},"row_limit":-1}`, http.StatusBadRequest},
		{"bad-selection", `{"filter":{"op":"notnull","column":"m/v.btr"},"selection":"!!!"}`, http.StatusBadRequest},
		{"sum-over-string", `{"aggregates":[{"op":"sum","column":"m/v.btr"}],"filter":{"op":"eq","column":"m/v.btr","value":"nope"}}`, http.StatusBadRequest},
		{"unknown-column", `{"filter":{"op":"notnull","column":"m/missing.btr"}}`, http.StatusNotFound},
		{"sidecar-not-column", `{"filter":{"op":"notnull","column":"m/ts.btr.btrm"}}`, http.StatusBadRequest},
		{"ok", `{"filter":{"op":"notnull","column":"m/v.btr"}}`, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(cl.Endpoint()+"/v1/query", "application/json",
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			if resp.StatusCode >= 500 {
				t.Fatalf("5xx from query endpoint: %d", resp.StatusCode)
			}
		})
	}
}

// TestQueryEndpointCorrupt flips a byte inside one block: a query whose
// range forces a scan of that block answers 422, while a query the
// sidecar prunes clear of the damage still succeeds — graceful
// degradation instead of a 500.
func TestQueryEndpointCorrupt(t *testing.T) {
	contents, ts := queryCorpus(t)
	ix, err := btrblocks.ParseColumnIndex(contents["m/ts.btr"])
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(contents["m/ts.btr"])
	bad[ix.Blocks[4].DataOffset()+2] ^= 0xFF // rows 2000..2499
	contents["m/ts.btr"] = bad
	_, cl := queryStore(t, contents)

	rangePlan := func(lo, hi int64) *query.Plan {
		return &query.Plan{Filter: &query.Node{Op: "range", Column: "m/ts.btr",
			Lo: jsonRaw(fmt.Sprint(lo)), Hi: jsonRaw(fmt.Sprint(hi))}}
	}
	_, err = cl.Query(t.Context(), rangePlan(ts[2100], ts[2200]))
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusUnprocessableEntity {
		t.Fatalf("want 422 scanning the corrupt block, got %v", err)
	}
	res, err := cl.Query(t.Context(), rangePlan(ts[4000], ts[4100]))
	if err != nil {
		t.Fatalf("pruned query should dodge the damage: %v", err)
	}
	if res.Matched != 101 {
		t.Fatalf("matched=%d, want 101", res.Matched)
	}
}
