package blockstore

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"btrblocks"
)

func waitALittle() { time.Sleep(5 * time.Millisecond) }

// compressTestColumn builds a multi-block int column file.
func compressTestColumn(t *testing.T, name string, rows, blockSize int) ([]byte, btrblocks.Column) {
	t.Helper()
	values := make([]int32, rows)
	for i := range values {
		values[i] = int32(i % 911)
	}
	col := btrblocks.IntColumn(name, values)
	data, err := btrblocks.CompressColumn(col, &btrblocks.Options{BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	return data, col
}

func TestConcurrentGetsDecodeOnce(t *testing.T) {
	data, _ := compressTestColumn(t, "c", 8000, 2000)
	tel := btrblocks.NewTelemetry()
	store, err := NewStore(map[string][]byte{"c.btr": data}, Config{
		Options: &btrblocks.Options{Telemetry: tel},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Many goroutines race for the same block; the singleflight must run
	// the decode exactly once. The library's decode telemetry is the
	// ground truth — it is bumped only inside a real block decode.
	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			blk, err := store.Block("c.btr", 1)
			if err != nil {
				errs <- err
				return
			}
			if blk.StartRow != 2000 || blk.Rows() != 2000 {
				errs <- fmt.Errorf("got block [%d,+%d)", blk.StartRow, blk.Rows())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if n := tel.Snapshot().DecodeBlocks; n != 1 {
		t.Fatalf("%d goroutines caused %d decodes, want exactly 1", goroutines, n)
	}
	m := store.Metrics()
	if got := m.DecodedBlocks.Load(); got != 1 {
		t.Fatalf("store decoded %d blocks, want 1", got)
	}
	if misses := m.CacheMisses.Load(); misses != 1 {
		t.Fatalf("%d misses, want 1", misses)
	}
	if hits := m.CacheHits.Load(); hits != goroutines-1 {
		t.Fatalf("%d hits, want %d", hits, goroutines-1)
	}
}

func TestCacheEvictionHonorsByteBound(t *testing.T) {
	data, _ := compressTestColumn(t, "c", 16000, 1000) // 16 blocks x 4000 B
	blockBytes := int64(4 * 1000)
	// One shard makes the budget exact; room for 3 blocks.
	store, err := NewStore(map[string][]byte{"c.btr": data}, Config{
		CacheBytes:  3 * blockBytes,
		CacheShards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	for b := 0; b < 16; b++ {
		if _, err := store.Block("c.btr", b); err != nil {
			t.Fatal(err)
		}
		if got := store.Cache().Bytes(); got > 3*blockBytes {
			t.Fatalf("after block %d: cache holds %d bytes, bound is %d", b, got, 3*blockBytes)
		}
	}
	m := store.Metrics()
	if ev := m.CacheEvictions.Load(); ev != 13 {
		t.Fatalf("%d evictions, want 13 (16 inserts into 3 slots)", ev)
	}
	if n := store.Cache().Len(); n != 3 {
		t.Fatalf("%d entries resident, want 3", n)
	}
	if got, want := m.CacheBytes.Load(), store.Cache().Bytes(); got != want {
		t.Fatalf("metrics gauge %d != cache accounting %d", got, want)
	}

	// LRU order: the three most recent blocks are resident, older ones
	// are not.
	for b := 13; b < 16; b++ {
		if !store.Cache().Contains("c.btr\x00" + strconv.Itoa(b)) {
			t.Fatalf("block %d should be resident", b)
		}
	}
	if store.Cache().Contains("c.btr\x00" + "0") {
		t.Fatal("block 0 should have been evicted")
	}
}

func TestCacheDisabledStillDedupsInflight(t *testing.T) {
	// CacheBytes < 0 turns residency off: every request decodes, but
	// concurrent requests for the same block still share one decode.
	data, _ := compressTestColumn(t, "c", 4000, 2000)
	store, err := NewStore(map[string][]byte{"c.btr": data}, Config{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	for i := 0; i < 3; i++ {
		if _, err := store.Block("c.btr", 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.Metrics().DecodedBlocks.Load(); got != 3 {
		t.Fatalf("disabled cache decoded %d times for 3 sequential gets, want 3", got)
	}
	if got := store.Cache().Len(); got != 0 {
		t.Fatalf("disabled cache holds %d entries", got)
	}
}

func TestCacheLoadErrorsNotCached(t *testing.T) {
	m := NewMetrics()
	c := NewCache(1<<20, 1, m)
	calls := 0
	boom := fmt.Errorf("boom")
	load := func() (*Block, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return &Block{Bytes: 8}, nil
	}
	if _, err := c.GetOrLoad("k", load); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not poison the key: the next load succeeds.
	blk, err := c.GetOrLoad("k", load)
	if err != nil || blk == nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 2 {
		t.Fatalf("loader ran %d times, want 2", calls)
	}
}

func TestCachePrefetchWarmsFollowingBlocks(t *testing.T) {
	data, _ := compressTestColumn(t, "c", 8000, 1000) // 8 blocks
	store, err := NewStore(map[string][]byte{"c.btr": data}, Config{
		PrefetchBlocks:  3,
		PrefetchWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if _, err := store.Block("c.btr", 0); err != nil {
		t.Fatal(err)
	}
	// Readahead is asynchronous; a bounded retry loop lets it land. A
	// second Block call is not needed — blocks 1..3 arrive on their own.
	deadline := 200
	for ; deadline > 0; deadline-- {
		if store.Cache().Contains("c.btr\x001") &&
			store.Cache().Contains("c.btr\x002") &&
			store.Cache().Contains("c.btr\x003") {
			break
		}
		// yield to the workers
		waitALittle()
	}
	if deadline == 0 {
		t.Fatalf("readahead never landed: scheduled=%d dropped=%d resident=%d",
			store.Metrics().PrefetchScheduled.Load(),
			store.Metrics().PrefetchDropped.Load(),
			store.Cache().Len())
	}
	if store.Cache().Contains("c.btr\x004") {
		t.Fatal("block 4 decoded beyond the readahead window")
	}
	if got := store.Metrics().PrefetchScheduled.Load(); got != 3 {
		t.Fatalf("scheduled %d readaheads, want 3", got)
	}
}
