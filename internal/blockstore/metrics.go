package blockstore

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"btrblocks/internal/obs"
)

// Metrics holds the blockstore's operational counters: cache behavior,
// decode work, prefetch activity, and per-endpoint request counts with
// latency histograms. All fields are updated with atomics, so one Metrics
// is shared by the store, the cache and the HTTP server without locking
// on the hot path. Rendered as Prometheus text exposition by WriteTo.
type Metrics struct {
	CacheHits         atomic.Int64
	CacheMisses       atomic.Int64
	CacheEvictions    atomic.Int64
	CacheBytes        atomic.Int64 // gauge: decompressed bytes resident
	CacheEntries      atomic.Int64 // gauge
	DecodedBlocks     atomic.Int64
	DecodedBytes      atomic.Int64 // decompressed (in-memory) bytes produced
	PrefetchScheduled atomic.Int64
	PrefetchDropped   atomic.Int64
	InFlight          atomic.Int64 // gauge: HTTP requests being served
	CorruptBlocks     atomic.Int64 // decode attempts that failed with corruption
	QuarantinedBlocks atomic.Int64 // gauge: blocks currently quarantined
	Invalidations     atomic.Int64 // Invalidate calls (file reloads/removals)
	InvalidatedBlocks atomic.Int64 // cached blocks dropped by invalidation
	RepairsAccepted   atomic.Int64 // repair pushes verified and installed
	RepairsRejected   atomic.Int64 // repair pushes refused (failed verification)

	QueryRequests      atomic.Int64 // /v1/query plans executed
	QueryPredicates    atomic.Int64 // filter leaves evaluated across all queries
	QueryBlocksPruned  atomic.Int64 // candidate blocks skipped via metadata bounds
	QueryBlocksScanned atomic.Int64 // candidate blocks evaluated by a kernel

	mu        sync.Mutex
	endpoints map[string]*EndpointMetrics
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*EndpointMetrics)}
}

// Endpoint returns (creating on first use) the counters for one route.
func (m *Metrics) Endpoint(route string) *EndpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoints[route]
	if ep == nil {
		ep = &EndpointMetrics{}
		m.endpoints[route] = ep
	}
	return ep
}

// EndpointMetrics counts one route's requests, errors (non-2xx) and
// latency distribution. The histogram is the shared obs log-scale type,
// so the route series in /metrics carry the same bucket layout as the
// library's compress/decode histograms.
type EndpointMetrics struct {
	Requests atomic.Int64
	Errors   atomic.Int64
	Latency  obs.Histogram
}

// EndpointSnapshot is a point-in-time summary of one route, used by the
// JSON telemetry report and the btrserved shutdown summary.
type EndpointSnapshot struct {
	Route    string                `json:"route"`
	Requests int64                 `json:"requests"`
	Errors   int64                 `json:"errors"`
	Latency  obs.HistogramSnapshot `json:"latency"`
}

// endpointsSorted returns the routes and their metrics, sorted by route.
func (m *Metrics) endpointsSorted() ([]string, map[string]*EndpointMetrics) {
	m.mu.Lock()
	routes := make([]string, 0, len(m.endpoints))
	eps := make(map[string]*EndpointMetrics, len(m.endpoints))
	for r, ep := range m.endpoints {
		routes = append(routes, r)
		eps[r] = ep
	}
	m.mu.Unlock()
	sort.Strings(routes)
	return routes, eps
}

// Endpoints summarizes every route, sorted by route name.
func (m *Metrics) Endpoints() []EndpointSnapshot {
	routes, eps := m.endpointsSorted()
	out := make([]EndpointSnapshot, len(routes))
	for i, r := range routes {
		ep := eps[r]
		out[i] = EndpointSnapshot{
			Route:    r,
			Requests: ep.Requests.Load(),
			Errors:   ep.Errors.Load(),
			Latency:  ep.Latency.Snapshot(),
		}
	}
	return out
}

// Cache summarizes the cache and decode counters.
func (m *Metrics) Cache() CacheStats {
	return CacheStats{
		Hits:              m.CacheHits.Load(),
		Misses:            m.CacheMisses.Load(),
		Evictions:         m.CacheEvictions.Load(),
		Bytes:             m.CacheBytes.Load(),
		Entries:           m.CacheEntries.Load(),
		DecodedBlocks:     m.DecodedBlocks.Load(),
		DecodedBytes:      m.DecodedBytes.Load(),
		PrefetchScheduled: m.PrefetchScheduled.Load(),
		PrefetchDropped:   m.PrefetchDropped.Load(),
		InFlight:          m.InFlight.Load(),
		CorruptBlocks:     m.CorruptBlocks.Load(),
		QuarantinedBlocks: m.QuarantinedBlocks.Load(),
		RepairsAccepted:   m.RepairsAccepted.Load(),
		RepairsRejected:   m.RepairsRejected.Load(),
	}
}

// WriteTo renders the metrics in Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("btrserved_cache_hits_total", "Block cache hits (including singleflight joins).", m.CacheHits.Load())
	counter("btrserved_cache_misses_total", "Block cache misses that triggered a decode.", m.CacheMisses.Load())
	counter("btrserved_cache_evictions_total", "Blocks evicted to stay under the byte bound.", m.CacheEvictions.Load())
	gauge("btrserved_cache_bytes", "Decompressed bytes resident in the block cache.", m.CacheBytes.Load())
	gauge("btrserved_cache_entries", "Blocks resident in the block cache.", m.CacheEntries.Load())
	counter("btrserved_decoded_blocks_total", "Blocks decompressed by the store.", m.DecodedBlocks.Load())
	counter("btrserved_decoded_bytes_total", "Decompressed bytes produced by the store.", m.DecodedBytes.Load())
	counter("btrserved_prefetch_scheduled_total", "Blocks scheduled for readahead decode.", m.PrefetchScheduled.Load())
	counter("btrserved_prefetch_dropped_total", "Readahead blocks dropped because the queue was full.", m.PrefetchDropped.Load())
	gauge("btrserved_inflight_requests", "HTTP requests currently being served.", m.InFlight.Load())
	counter("btrserved_corrupt_blocks_total", "Block decode attempts that failed with corruption (checksum mismatch, truncation, decoder rejection).", m.CorruptBlocks.Load())
	gauge("btrserved_quarantined_blocks", "Blocks currently quarantined after repeated corrupt decodes.", m.QuarantinedBlocks.Load())
	counter("btrserved_invalidations_total", "File invalidations (reload, add, or removal of a served file).", m.Invalidations.Load())
	counter("btrserved_invalidated_blocks_total", "Cached blocks dropped by file invalidation.", m.InvalidatedBlocks.Load())
	counter("btrserved_repairs_accepted_total", "Cross-replica repair pushes verified and installed.", m.RepairsAccepted.Load())
	counter("btrserved_repairs_rejected_total", "Cross-replica repair pushes refused after failing verification.", m.RepairsRejected.Load())
	counter("btrserved_query_requests_total", "Query plans executed by /v1/query.", m.QueryRequests.Load())
	counter("btrserved_query_predicates_total", "Filter leaves evaluated across all queries.", m.QueryPredicates.Load())
	counter("btrserved_query_blocks_pruned_total", "Candidate blocks skipped via metadata bounds before any decode.", m.QueryBlocksPruned.Load())
	counter("btrserved_query_blocks_scanned_total", "Candidate blocks evaluated by a predicate kernel.", m.QueryBlocksScanned.Load())

	routes, eps := m.endpointsSorted()

	fmt.Fprintf(cw, "# HELP btrserved_http_requests_total HTTP requests by route.\n# TYPE btrserved_http_requests_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(cw, "btrserved_http_requests_total{route=%q} %d\n", r, eps[r].Requests.Load())
	}
	fmt.Fprintf(cw, "# HELP btrserved_http_errors_total Non-2xx HTTP responses by route.\n# TYPE btrserved_http_errors_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(cw, "btrserved_http_errors_total{route=%q} %d\n", r, eps[r].Errors.Load())
	}
	fmt.Fprintf(cw, "# HELP btrserved_http_request_duration_seconds Request latency by route.\n# TYPE btrserved_http_request_duration_seconds histogram\n")
	for _, r := range routes {
		eps[r].Latency.WritePromLines(cw, "btrserved_http_request_duration_seconds",
			fmt.Sprintf("route=%q", r))
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
