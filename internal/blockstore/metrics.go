package blockstore

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics holds the blockstore's operational counters: cache behavior,
// decode work, prefetch activity, and per-endpoint request counts with
// latency histograms. All fields are updated with atomics, so one Metrics
// is shared by the store, the cache and the HTTP server without locking
// on the hot path. Rendered as Prometheus text exposition by WriteTo.
type Metrics struct {
	CacheHits         atomic.Int64
	CacheMisses       atomic.Int64
	CacheEvictions    atomic.Int64
	CacheBytes        atomic.Int64 // gauge: decompressed bytes resident
	CacheEntries      atomic.Int64 // gauge
	DecodedBlocks     atomic.Int64
	DecodedBytes      atomic.Int64 // decompressed (in-memory) bytes produced
	PrefetchScheduled atomic.Int64
	PrefetchDropped   atomic.Int64
	InFlight          atomic.Int64 // gauge: HTTP requests being served

	mu        sync.Mutex
	endpoints map[string]*EndpointMetrics
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*EndpointMetrics)}
}

// Endpoint returns (creating on first use) the counters for one route.
func (m *Metrics) Endpoint(route string) *EndpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoints[route]
	if ep == nil {
		ep = &EndpointMetrics{}
		m.endpoints[route] = ep
	}
	return ep
}

// EndpointMetrics counts one route's requests, errors (non-2xx) and
// latency distribution.
type EndpointMetrics struct {
	Requests atomic.Int64
	Errors   atomic.Int64
	Latency  LatencyHistogram
}

// latencyBuckets are the histogram's upper bounds in seconds; a final
// +Inf bucket is implicit.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// LatencyHistogram is a fixed-bucket latency histogram with atomic
// counters, exposition-compatible with Prometheus (cumulative buckets,
// sum and count derived at render time).
type LatencyHistogram struct {
	counts   [len(latencyBuckets) + 1]atomic.Int64
	sumNanos atomic.Int64
}

// Observe records one duration.
func (h *LatencyHistogram) Observe(d time.Duration) {
	h.sumNanos.Add(d.Nanoseconds())
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(latencyBuckets)].Add(1)
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// WriteTo renders the metrics in Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("btrserved_cache_hits_total", "Block cache hits (including singleflight joins).", m.CacheHits.Load())
	counter("btrserved_cache_misses_total", "Block cache misses that triggered a decode.", m.CacheMisses.Load())
	counter("btrserved_cache_evictions_total", "Blocks evicted to stay under the byte bound.", m.CacheEvictions.Load())
	gauge("btrserved_cache_bytes", "Decompressed bytes resident in the block cache.", m.CacheBytes.Load())
	gauge("btrserved_cache_entries", "Blocks resident in the block cache.", m.CacheEntries.Load())
	counter("btrserved_decoded_blocks_total", "Blocks decompressed by the store.", m.DecodedBlocks.Load())
	counter("btrserved_decoded_bytes_total", "Decompressed bytes produced by the store.", m.DecodedBytes.Load())
	counter("btrserved_prefetch_scheduled_total", "Blocks scheduled for readahead decode.", m.PrefetchScheduled.Load())
	counter("btrserved_prefetch_dropped_total", "Readahead blocks dropped because the queue was full.", m.PrefetchDropped.Load())
	gauge("btrserved_inflight_requests", "HTTP requests currently being served.", m.InFlight.Load())

	m.mu.Lock()
	routes := make([]string, 0, len(m.endpoints))
	for r := range m.endpoints {
		routes = append(routes, r)
	}
	eps := make(map[string]*EndpointMetrics, len(routes))
	for r, ep := range m.endpoints {
		eps[r] = ep
	}
	m.mu.Unlock()
	sort.Strings(routes)

	fmt.Fprintf(cw, "# HELP btrserved_http_requests_total HTTP requests by route.\n# TYPE btrserved_http_requests_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(cw, "btrserved_http_requests_total{route=%q} %d\n", r, eps[r].Requests.Load())
	}
	fmt.Fprintf(cw, "# HELP btrserved_http_errors_total Non-2xx HTTP responses by route.\n# TYPE btrserved_http_errors_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(cw, "btrserved_http_errors_total{route=%q} %d\n", r, eps[r].Errors.Load())
	}
	fmt.Fprintf(cw, "# HELP btrserved_http_request_duration_seconds Request latency by route.\n# TYPE btrserved_http_request_duration_seconds histogram\n")
	for _, r := range routes {
		h := &eps[r].Latency
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(cw, "btrserved_http_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				r, fmt.Sprintf("%g", ub), cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(cw, "btrserved_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, cum)
		fmt.Fprintf(cw, "btrserved_http_request_duration_seconds_sum{route=%q} %g\n",
			r, float64(h.sumNanos.Load())/1e9)
		fmt.Fprintf(cw, "btrserved_http_request_duration_seconds_count{route=%q} %d\n", r, cum)
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
