package blockstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"btrblocks"
	"btrblocks/coldata"
	"btrblocks/internal/obs"
)

// This file defines the wire representations shared by Server and
// Client: the JSON DTOs and the binary block encoding.
//
// The binary block format ("BTBK") is the throughput path — raw
// little-endian values with no per-value framing:
//
//	block  := "BTBK" version:u8 type:u8 startRow:u32 rows:u32
//	          nullCount:u32 nullPos:u32* payload
//	payload(int)    := rows × i32
//	payload(bigint) := rows × i64
//	payload(double) := rows × float64 bits (bit-exact, NaN payloads kept)
//	payload(string) := (rows+1) × u32 offsets, then data bytes
//
// The JSON form carries doubles as strconv 'g/-1' strings because JSON
// cannot represent NaN/Inf and loses float precision in some decoders;
// ParseFloat round-trips every finite value exactly. The binary form is
// always bit-exact.

const (
	blockWireMagic   = "BTBK"
	blockWireVersion = 1
)

// FileMeta describes one hosted file in /v1/files.
type FileMeta struct {
	Name   string `json:"name"`
	Bytes  int    `json:"bytes"`
	Kind   string `json:"kind"`
	Type   string `json:"type,omitempty"`
	Rows   int    `json:"rows"`
	Blocks int    `json:"blocks,omitempty"`
}

// BlockPayload is the JSON form of a decompressed block. Exactly one of
// the value slices is set, matching Type.
type BlockPayload struct {
	File     string   `json:"file"`
	Block    int      `json:"block"`
	StartRow int      `json:"start_row"`
	Rows     int      `json:"rows"`
	Type     string   `json:"type"`
	Ints     []int32  `json:"ints,omitempty"`
	Ints64   []int64  `json:"ints64,omitempty"`
	Doubles  []string `json:"doubles,omitempty"`
	Strings  []string `json:"strings,omitempty"`
	Nulls    []int    `json:"nulls,omitempty"`
}

// CountEqResult is the /v1/count-eq response.
type CountEqResult struct {
	File  string `json:"file"`
	Type  string `json:"type"`
	Value string `json:"value"`
	Count int    `json:"count"`
	Nanos int64  `json:"nanos"`
}

// InvalidateResult is the POST /v1/invalidate/NAME response.
type InvalidateResult struct {
	File string `json:"file"`
	// Status is "reloaded" when the file is served after invalidation,
	// "removed" when it no longer exists in the backing directory.
	Status string `json:"status"`
}

// CacheStats is the cache section of /v1/telemetry.
type CacheStats struct {
	Hits              int64 `json:"hits"`
	Misses            int64 `json:"misses"`
	Evictions         int64 `json:"evictions"`
	Bytes             int64 `json:"bytes"`
	Entries           int64 `json:"entries"`
	DecodedBlocks     int64 `json:"decoded_blocks"`
	DecodedBytes      int64 `json:"decoded_bytes"`
	PrefetchScheduled int64 `json:"prefetch_scheduled"`
	PrefetchDropped   int64 `json:"prefetch_dropped"`
	InFlight          int64 `json:"inflight"`
	CorruptBlocks     int64 `json:"corrupt_blocks"`
	QuarantinedBlocks int64 `json:"quarantined_blocks"`
	RepairsAccepted   int64 `json:"repairs_accepted,omitempty"`
	RepairsRejected   int64 `json:"repairs_rejected,omitempty"`
}

// RepairResult is the PUT /v1/repair/NAME response.
type RepairResult struct {
	File string `json:"file"`
	// Bytes is the size of the installed payload.
	Bytes int `json:"bytes"`
	// Status is "accepted" — a rejected push is an HTTP error instead.
	Status string `json:"status"`
}

// TelemetryReport is the /v1/telemetry response: the serving-side cache
// counters, per-route request summaries with latency quantiles, plus the
// library's compression/decode telemetry snapshot (present when the
// store's Options carry a recorder; per-block events are stripped to
// keep the payload bounded).
type TelemetryReport struct {
	Cache     CacheStats                   `json:"cache"`
	Endpoints []EndpointSnapshot           `json:"endpoints,omitempty"`
	Telemetry *btrblocks.TelemetrySnapshot `json:"telemetry,omitempty"`
	// SpanExemplars links each root span name to its slowest recorded
	// trace ID — the jump from a latency histogram to the one concrete
	// trace that explains its tail. Present only when span recording is
	// enabled on the server.
	SpanExemplars []obs.Exemplar `json:"span_exemplars,omitempty"`
	// Spans carries the recorder's cumulative counters when span
	// recording is enabled.
	Spans *obs.SpanStats `json:"spans,omitempty"`
}

// BlockValues is the client-side decoded form of a block, whichever wire
// format carried it.
type BlockValues struct {
	File     string
	Block    int
	StartRow int
	Rows     int
	Type     string
	Ints     []int32
	Ints64   []int64
	Doubles  []float64
	Strings  []string
	// Nulls lists NULL positions, block-relative, ascending.
	Nulls []int
}

// UncompressedBytes returns the block's in-memory size under the same
// accounting as Column.UncompressedBytes.
func (b *BlockValues) UncompressedBytes() int {
	switch {
	case b.Ints != nil:
		return 4 * len(b.Ints)
	case b.Ints64 != nil:
		return 8 * len(b.Ints64)
	case b.Doubles != nil:
		return 8 * len(b.Doubles)
	default:
		n := 4 * len(b.Strings)
		for _, s := range b.Strings {
			n += len(s)
		}
		return n
	}
}

// nullPositions flattens a block's NULL mask.
func nullPositions(blk *Block) []int {
	if blk.Col.Nulls.NullCount() == 0 {
		return nil
	}
	out := make([]int, 0, blk.Col.Nulls.NullCount())
	blk.Col.Nulls.ForEachNull(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// blockPayload builds the JSON DTO for a decoded block.
func blockPayload(blk *Block) *BlockPayload {
	p := &BlockPayload{
		File:     blk.File,
		Block:    blk.Index,
		StartRow: blk.StartRow,
		Rows:     blk.Rows(),
		Type:     blk.Col.Type.String(),
		Nulls:    nullPositions(blk),
	}
	switch blk.Col.Type {
	case btrblocks.TypeInt:
		p.Ints = blk.Col.Ints
	case btrblocks.TypeInt64:
		p.Ints64 = blk.Col.Ints64
	case btrblocks.TypeDouble:
		p.Doubles = make([]string, len(blk.Col.Doubles))
		for i, v := range blk.Col.Doubles {
			p.Doubles[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
	case btrblocks.TypeString:
		p.Strings = make([]string, blk.Col.Strings.Len())
		for i := range p.Strings {
			p.Strings[i] = blk.Col.Strings.At(i)
		}
	}
	return p
}

// Values converts the JSON DTO to BlockValues, parsing doubles back.
func (p *BlockPayload) Values() (*BlockValues, error) {
	out := &BlockValues{
		File:     p.File,
		Block:    p.Block,
		StartRow: p.StartRow,
		Rows:     p.Rows,
		Type:     p.Type,
		Ints:     p.Ints,
		Ints64:   p.Ints64,
		Strings:  p.Strings,
		Nulls:    p.Nulls,
	}
	if p.Doubles != nil {
		out.Doubles = make([]float64, len(p.Doubles))
		for i, s := range p.Doubles {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("blockstore: bad double %q at %d: %v", s, i, err)
			}
			out.Doubles[i] = v
		}
	}
	return out, nil
}

// WireType maps the block's Type string back to the btrblocks Type
// byte, with the populated payload slice as a tie-breaker so a block
// that traveled either wire format round-trips.
func (b *BlockValues) WireType() btrblocks.Type {
	switch b.Type {
	case btrblocks.TypeInt.String():
		return btrblocks.TypeInt
	case btrblocks.TypeInt64.String():
		return btrblocks.TypeInt64
	case btrblocks.TypeDouble.String():
		return btrblocks.TypeDouble
	case btrblocks.TypeString.String():
		return btrblocks.TypeString
	}
	switch {
	case b.Ints != nil:
		return btrblocks.TypeInt
	case b.Ints64 != nil:
		return btrblocks.TypeInt64
	case b.Doubles != nil:
		return btrblocks.TypeDouble
	default:
		return btrblocks.TypeString
	}
}

// EncodeBinary renders the block in the BTBK wire format — the path a
// router uses to re-serve a block it fetched from a replica without
// ever re-decoding the column bytes.
func (b *BlockValues) EncodeBinary() []byte {
	out := make([]byte, 0, 18+4*len(b.Nulls)+b.UncompressedBytes())
	out = append(out, blockWireMagic...)
	out = append(out, blockWireVersion, byte(b.WireType()))
	out = binary.LittleEndian.AppendUint32(out, uint32(b.StartRow))
	out = binary.LittleEndian.AppendUint32(out, uint32(b.Rows))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Nulls)))
	for _, p := range b.Nulls {
		out = binary.LittleEndian.AppendUint32(out, uint32(p))
	}
	switch b.WireType() {
	case btrblocks.TypeInt:
		for _, v := range b.Ints {
			out = binary.LittleEndian.AppendUint32(out, uint32(v))
		}
	case btrblocks.TypeInt64:
		for _, v := range b.Ints64 {
			out = binary.LittleEndian.AppendUint64(out, uint64(v))
		}
	case btrblocks.TypeDouble:
		for _, v := range b.Doubles {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	case btrblocks.TypeString:
		off := uint32(0)
		out = binary.LittleEndian.AppendUint32(out, off)
		for _, s := range b.Strings {
			off += uint32(len(s))
			out = binary.LittleEndian.AppendUint32(out, off)
		}
		for _, s := range b.Strings {
			out = append(out, s...)
		}
	}
	return out
}

// Payload renders the block as the JSON DTO (the counterpart of
// EncodeBinary for format=json re-serving).
func (b *BlockValues) Payload() *BlockPayload {
	p := &BlockPayload{
		File:     b.File,
		Block:    b.Block,
		StartRow: b.StartRow,
		Rows:     b.Rows,
		Type:     b.WireType().String(),
		Ints:     b.Ints,
		Ints64:   b.Ints64,
		Strings:  b.Strings,
		Nulls:    b.Nulls,
	}
	if b.Doubles != nil {
		p.Doubles = make([]string, len(b.Doubles))
		for i, v := range b.Doubles {
			p.Doubles[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
	}
	return p
}

// encodeBlockBinary renders a decoded block in the BTBK wire format.
func encodeBlockBinary(blk *Block) []byte {
	nulls := nullPositions(blk)
	out := make([]byte, 0, 18+4*len(nulls)+blk.Bytes)
	out = append(out, blockWireMagic...)
	out = append(out, blockWireVersion, byte(blk.Col.Type))
	out = binary.LittleEndian.AppendUint32(out, uint32(blk.StartRow))
	out = binary.LittleEndian.AppendUint32(out, uint32(blk.Rows()))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(nulls)))
	for _, p := range nulls {
		out = binary.LittleEndian.AppendUint32(out, uint32(p))
	}
	switch blk.Col.Type {
	case btrblocks.TypeInt:
		for _, v := range blk.Col.Ints {
			out = binary.LittleEndian.AppendUint32(out, uint32(v))
		}
	case btrblocks.TypeInt64:
		for _, v := range blk.Col.Ints64 {
			out = binary.LittleEndian.AppendUint64(out, uint64(v))
		}
	case btrblocks.TypeDouble:
		for _, v := range blk.Col.Doubles {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	case btrblocks.TypeString:
		s := blk.Col.Strings
		out = binary.LittleEndian.AppendUint32(out, 0)
		for i := 0; i < s.Len(); i++ {
			out = binary.LittleEndian.AppendUint32(out, s.Offsets[i+1])
		}
		out = append(out, s.Data...)
	}
	return out
}

// decodeBlockBinary parses the BTBK wire format.
func decodeBlockBinary(file string, data []byte) (*BlockValues, error) {
	if len(data) < 18 || string(data[:4]) != blockWireMagic || data[4] != blockWireVersion {
		return nil, fmt.Errorf("blockstore: bad block wire header")
	}
	t := btrblocks.Type(data[5])
	out := &BlockValues{
		File:     file,
		StartRow: int(binary.LittleEndian.Uint32(data[6:])),
		Rows:     int(binary.LittleEndian.Uint32(data[10:])),
		Type:     t.String(),
	}
	nullCount := int(binary.LittleEndian.Uint32(data[14:]))
	pos := 18
	if nullCount < 0 || len(data) < pos+4*nullCount {
		return nil, fmt.Errorf("blockstore: truncated null list")
	}
	if nullCount > 0 {
		out.Nulls = make([]int, nullCount)
		for i := range out.Nulls {
			out.Nulls[i] = int(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
		}
	}
	rows := out.Rows
	switch t {
	case btrblocks.TypeInt:
		if len(data) != pos+4*rows {
			return nil, fmt.Errorf("blockstore: int payload size mismatch")
		}
		out.Ints = make([]int32, rows)
		for i := range out.Ints {
			out.Ints[i] = int32(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
		}
	case btrblocks.TypeInt64:
		if len(data) != pos+8*rows {
			return nil, fmt.Errorf("blockstore: int64 payload size mismatch")
		}
		out.Ints64 = make([]int64, rows)
		for i := range out.Ints64 {
			out.Ints64[i] = int64(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
		}
	case btrblocks.TypeDouble:
		if len(data) != pos+8*rows {
			return nil, fmt.Errorf("blockstore: double payload size mismatch")
		}
		out.Doubles = make([]float64, rows)
		for i := range out.Doubles {
			out.Doubles[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
		}
	case btrblocks.TypeString:
		if len(data) < pos+4*(rows+1) {
			return nil, fmt.Errorf("blockstore: truncated string offsets")
		}
		offsets := make([]uint32, rows+1)
		for i := range offsets {
			offsets[i] = binary.LittleEndian.Uint32(data[pos:])
			pos += 4
		}
		payload := data[pos:]
		if int(offsets[rows]) != len(payload) {
			return nil, fmt.Errorf("blockstore: string payload size mismatch")
		}
		s := coldata.Strings{Offsets: offsets, Data: payload}
		out.Strings = make([]string, rows)
		for i := range out.Strings {
			prev := offsets[i]
			if offsets[i+1] < prev {
				return nil, fmt.Errorf("blockstore: string offsets not monotonic")
			}
			out.Strings[i] = s.At(i)
		}
	default:
		return nil, fmt.Errorf("blockstore: unknown block type %d", t)
	}
	return out, nil
}
