package blockstore

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"btrblocks"
	"btrblocks/internal/faultfs"
)

// corruptBlockPayload flips one byte inside block idx's compressed data
// stream of a column file and returns the damaged offset.
func corruptBlockPayload(t *testing.T, data []byte, idx int, seed int64) int {
	t.Helper()
	ix, err := btrblocks.ParseColumnIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	ref := ix.Blocks[idx]
	off := faultfs.CorruptOneByte(data, ref.DataOffset(), ref.End(), rand.New(rand.NewSource(seed)))
	if off < 0 {
		t.Fatal("no payload byte to corrupt")
	}
	return off
}

// TestQuarantineAndPartialScan is the end-to-end degradation story: one
// corrupt block in a served column is detected (422), quarantined after
// repeated failures (410), skipped by a partial scan that still returns
// every healthy block, and counted in /metrics.
func TestQuarantineAndPartialScan(t *testing.T) {
	contents, cols := testCorpus(t)
	const victim = "t/i.btr"
	const badBlock = 1
	corruptBlockPayload(t, contents[victim], badBlock, 99)

	store, err := NewStore(contents, Config{QuarantineThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	cl := NewClient(srv.URL, WithBackoff(time.Millisecond, 2*time.Millisecond))
	ctx := context.Background()

	// The corrupt block fails with 422 until the threshold, then 410.
	for i := 0; i < 3; i++ {
		_, err := cl.Block(ctx, victim, badBlock)
		var he *HTTPError
		if !errors.As(err, &he) || he.Status != http.StatusUnprocessableEntity {
			t.Fatalf("attempt %d: want 422, got %v", i, err)
		}
		if !IsBlockDamage(err) {
			t.Fatalf("attempt %d: %v must classify as block damage", i, err)
		}
	}
	_, err = cl.Block(ctx, victim, badBlock)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusGone {
		t.Fatalf("after threshold: want 410 Gone, got %v", err)
	}

	// Healthy blocks of the same column keep serving.
	if _, err := cl.Block(ctx, victim, 0); err != nil {
		t.Fatalf("healthy block: %v", err)
	}

	// A strict scan fails; a partial scan returns every healthy block
	// plus the partial marker.
	if _, _, err := cl.ScanColumn(ctx, victim, 4); err == nil {
		t.Fatal("strict scan over a damaged column must fail")
	}
	res, err := cl.ScanColumnPartial(ctx, victim, 4)
	if err != nil {
		t.Fatalf("partial scan: %v", err)
	}
	if !res.Partial || len(res.FailedBlocks) != 1 || res.FailedBlocks[0] != badBlock {
		t.Fatalf("partial scan result: %+v", res)
	}
	col := cols[victim]
	total := col.Len()
	ix, _ := btrblocks.ParseColumnIndex(contents[victim])
	wantRows := total - ix.Blocks[badBlock].Rows
	if res.Rows != wantRows || res.Blocks != len(ix.Blocks)-1 {
		t.Fatalf("partial scan rows %d blocks %d, want %d rows %d blocks", res.Rows, res.Blocks, wantRows, len(ix.Blocks)-1)
	}

	// The damage shows up in the telemetry and the Prometheus text.
	cs := store.Metrics().Cache()
	if cs.CorruptBlocks < 3 || cs.QuarantinedBlocks != 1 {
		t.Fatalf("metrics: corrupt=%d quarantined=%d", cs.CorruptBlocks, cs.QuarantinedBlocks)
	}
	if q := store.Quarantined(); len(q) != 1 {
		t.Fatalf("quarantined keys: %v", q)
	}
	text, err := cl.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "btrserved_corrupt_blocks_total") ||
		!strings.Contains(text, "btrserved_quarantined_blocks 1") {
		t.Fatalf("metrics exposition missing corruption series:\n%s", text)
	}
}

// TestQuarantineTTLSelfHeals proves the quarantine lifts after the TTL:
// once the underlying bytes are repaired, the re-probe succeeds and the
// block returns to service.
func TestQuarantineTTLSelfHeals(t *testing.T) {
	contents, _ := testCorpus(t)
	const victim = "t/d.btr"
	data := contents[victim]
	orig := append([]byte(nil), data...)
	corruptBlockPayload(t, data, 0, 7)

	store, err := NewStore(contents, Config{QuarantineThreshold: 1, QuarantineTTL: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if _, err := store.Block(victim, 0); !IsCorrupt(err) {
		t.Fatalf("want corrupt, got %v", err)
	}
	if _, err := store.Block(victim, 0); !IsQuarantined(err) {
		t.Fatalf("want quarantined, got %v", err)
	}
	// Repair the bytes in place (the store serves the same backing array)
	// and wait out the TTL: the next probe must succeed.
	copy(data, orig)
	time.Sleep(30 * time.Millisecond)
	blk, err := store.Block(victim, 0)
	if err != nil {
		t.Fatalf("after repair + TTL: %v", err)
	}
	if blk.Rows() == 0 {
		t.Fatal("healed block is empty")
	}
	if got := store.Metrics().QuarantinedBlocks.Load(); got != 0 {
		t.Fatalf("quarantine gauge after heal: %d", got)
	}
}

// TestClientRetriesFlakyServer proves the retry budget rides out a
// server that fails the first attempts of every request with 5xx.
func TestClientRetriesFlakyServer(t *testing.T) {
	contents, _ := testCorpus(t)
	store, err := NewStore(contents, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	inner := NewServer(store)

	var hits atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Every third request succeeds; the rest fail with 503.
		if hits.Add(1)%3 != 0 {
			http.Error(w, "synthetic overload", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	cl := NewClient(flaky.URL, WithRetries(5), WithBackoff(time.Millisecond, 4*time.Millisecond))
	ctx := context.Background()
	rows, _, err := cl.ScanColumn(ctx, "t/s.btr", 2)
	if err != nil {
		t.Fatalf("scan through flaky server: %v", err)
	}
	if rows != 6000 {
		t.Fatalf("rows = %d, want 6000", rows)
	}
	if st := cl.Stats(); st.Retries == 0 {
		t.Fatal("expected retries to be recorded")
	}
}

// TestClientRetryBudgetExhausted proves a permanently failing server
// exhausts the budget and surfaces the final HTTP error.
func TestClientRetryBudgetExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	cl := NewClient(srv.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	err := cl.Healthz(context.Background())
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusInternalServerError {
		t.Fatalf("want 500 after budget, got %v", err)
	}
	if st := cl.Stats(); st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
}

// TestClientRetryRespectsCancel proves a context canceled mid-backoff
// aborts immediately with context.Canceled.
func TestClientRetryRespectsCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	// The backoff sleep (2s) dwarfs the assertion bound (1s), so the test
	// only passes if cancellation short-circuits the sleep — while leaving
	// enough slack that a loaded CI machine cannot flake it.
	cl := NewClient(srv.URL, WithRetries(10), WithBackoff(2*time.Second, 5*time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := cl.get(ctx, "/healthz")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("cancel took %v — backoff did not respect the context", time.Since(start))
	}
}

// TestClientDoesNotRetry4xx proves client errors are never retried: the
// request is wrong (or the data damaged), and hammering cannot fix it.
func TestClientDoesNotRetry4xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such thing", http.StatusNotFound)
	}))
	defer srv.Close()
	cl := NewClient(srv.URL, WithRetries(5), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if _, err := cl.get(context.Background(), "/nope"); err == nil {
		t.Fatal("expected error")
	}
	if hits.Load() != 1 {
		t.Fatalf("4xx was retried: %d attempts", hits.Load())
	}
	if st := cl.Stats(); st.Retries != 0 {
		t.Fatalf("retries = %d, want 0", st.Retries)
	}
}

// TestAttemptTimeout proves the per-attempt deadline fires for a hung
// server and the overall request still honors the retry budget.
func TestAttemptTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	cl := NewClient(srv.URL, WithRetries(1), WithAttemptTimeout(20*time.Millisecond),
		WithBackoff(time.Millisecond, 2*time.Millisecond))
	start := time.Now()
	_, err := cl.get(context.Background(), "/healthz")
	if err == nil {
		t.Fatal("expected timeout error")
	}
	// The failure mode is an unbounded hang, so any generous finite bound
	// proves the deadline fired; 2s leaves room for scheduler pressure.
	if time.Since(start) > 2*time.Second {
		t.Fatalf("hung for %v despite attempt timeout", time.Since(start))
	}
}

// TestAttemptTimeoutIsRetried is a regression test: an attempt that
// hangs into its WithAttemptTimeout deadline is a transient failure and
// must be retried — a later, responsive attempt succeeds. (Previously
// the child deadline's context.DeadlineExceeded was classified as
// caller cancellation and never retried.)
func TestAttemptTimeoutIsRetried(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// First attempt hangs until the test ends.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	cl := NewClient(srv.URL, WithRetries(2), WithAttemptTimeout(20*time.Millisecond),
		WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err := cl.Healthz(context.Background()); err != nil {
		t.Fatalf("hung first attempt was not retried: %v", err)
	}
	if hits.Load() < 2 {
		t.Fatalf("server saw %d attempts, want >= 2", hits.Load())
	}
	if st := cl.Stats(); st.Retries == 0 {
		t.Fatal("expected the attempt timeout to be recorded as a retry")
	}
}

// TestServerRequestTimeout proves WithRequestTimeout cuts off a slow
// handler with 503.
func TestServerRequestTimeout(t *testing.T) {
	contents, _ := testCorpus(t)
	store, err := NewStore(contents, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(time.Second):
		case <-r.Context().Done():
		}
	})
	wrapped := http.TimeoutHandler(slow, 20*time.Millisecond, "request timed out")
	// Exercise the option through a real Server too (fast handlers pass).
	srv := httptest.NewServer(NewServer(store, WithRequestTimeout(time.Second)))
	defer srv.Close()
	if err := NewClient(srv.URL).Healthz(context.Background()); err != nil {
		t.Fatalf("healthz through timeout handler: %v", err)
	}
	rec := httptest.NewServer(wrapped)
	defer rec.Close()
	resp, err := http.Get(rec.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow handler status %d, want 503", resp.StatusCode)
	}
}

// TestRawFetchDetectsTransportCorruption is the HTTP leg of the chaos
// suite: compressed (checksummed) bytes fetched through a bit-flipping
// transport must never decode cleanly — the CRCs catch what the network
// damaged.
func TestRawFetchDetectsTransportCorruption(t *testing.T) {
	contents, _ := testCorpus(t)
	store, err := NewStore(contents, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()

	flipping := &http.Client{Transport: faultfs.NewRoundTripper(srv.Client().Transport, faultfs.Config{Seed: 3, BitFlip: 1})}
	cl := NewClient(srv.URL, WithHTTPClient(flipping), WithRetries(0))
	ctx := context.Background()
	detected := 0
	const rounds = 40
	for i := 0; i < rounds; i++ {
		raw, err := cl.Raw(ctx, "t/l.btr")
		if err != nil {
			detected++ // truncation surfaced at the HTTP layer
			continue
		}
		if _, err := btrblocks.DecompressColumn(raw, nil); err == nil {
			t.Fatalf("round %d: flipped column file decoded cleanly", i)
		}
		rep := btrblocks.Verify(raw, nil)
		if rep.OK {
			t.Fatalf("round %d: verify passed on flipped bytes", i)
		}
		detected++
	}
	if detected != rounds {
		t.Fatalf("detected %d/%d corrupted transfers", detected, rounds)
	}
}
