// Package testgen holds the seeded column-shape generators shared by the
// parallel-equivalence property tests and the query-engine differential
// oracle. It deliberately depends on nothing in the module (not even the
// root package) so in-package root tests can use it without an import
// cycle: generators return plain value slices plus ascending NULL
// positions, and callers build whatever column representation they need.
package testgen

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
)

// WorkerCounts are the Parallelism values properties are checked under:
// serial, small, a prime that never divides block counts evenly, and
// whatever the host has.
func WorkerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// Spec describes one randomized column shape.
type Spec struct {
	Rows        int
	NullDensity float64 // fraction of rows marked NULL
	RunLen      int     // expected value-run length (1 = no runs)
	Cardinality int     // distinct-value pool size
}

// Label renders the shape for test names and failure messages.
func (s Spec) Label() string {
	return fmt.Sprintf("rows=%d/null=%.2f/run=%d/card=%d",
		s.Rows, s.NullDensity, s.RunLen, s.Cardinality)
}

// Specs sweeps block-boundary-straddling sizes (the harnesses compress
// with BlockSize 1000) against NULL-density / run-length / cardinality
// corners.
func Specs() []Spec {
	shapes := []struct {
		null float64
		run  int
		card int
	}{
		{0, 1, 1000},  // high-entropy, no NULLs
		{0, 40, 3},    // long runs, tiny dictionary (RLE/OneValue territory)
		{0.15, 8, 50}, // sparse NULLs, dictionary-sized pool
		{0.6, 1, 200}, // NULL-heavy
	}
	var specs []Spec
	for _, rows := range []int{0, 1, 999, 1000, 1001, 2500} {
		for _, sh := range shapes {
			specs = append(specs, Spec{rows, sh.null, sh.run, sh.card})
		}
	}
	return specs
}

// nullPositions draws ~NullDensity of the rows as NULL positions,
// ascending. Values at those positions stay whatever the generator
// produced — compressors are free to rewrite them.
func nullPositions(rng *rand.Rand, s Spec) []int {
	if s.NullDensity <= 0 {
		return nil
	}
	var out []int
	for i := 0; i < s.Rows; i++ {
		if rng.Float64() < s.NullDensity {
			out = append(out, i)
		}
	}
	return out
}

// runs fills n slots by repeatedly drawing a pool index and holding it
// for a geometric run, so RunLen shapes the data toward RLE.
func runs(rng *rand.Rand, n int, s Spec, emit func(i, poolIdx int)) {
	i := 0
	for i < n {
		idx := rng.Intn(s.Cardinality)
		length := 1
		if s.RunLen > 1 {
			length += rng.Intn(2 * s.RunLen)
		}
		for j := 0; j < length && i < n; j++ {
			emit(i, idx)
			i++
		}
	}
}

// IntValues generates an int32 column shape: values plus ascending NULL
// positions.
func IntValues(rng *rand.Rand, s Spec) ([]int32, []int) {
	pool := make([]int32, s.Cardinality)
	for i := range pool {
		pool[i] = int32(rng.Intn(1 << 20))
	}
	values := make([]int32, s.Rows)
	runs(rng, s.Rows, s, func(i, p int) { values[i] = pool[p] })
	return values, nullPositions(rng, s)
}

// Int64Values generates an int64 (timestamp-flavored) column shape.
func Int64Values(rng *rand.Rand, s Spec) ([]int64, []int) {
	pool := make([]int64, s.Cardinality)
	base := int64(1_600_000_000_000)
	for i := range pool {
		pool[i] = base + rng.Int63n(1<<32)
	}
	values := make([]int64, s.Rows)
	runs(rng, s.Rows, s, func(i, p int) { values[i] = pool[p] })
	return values, nullPositions(rng, s)
}

// DoubleValues generates a double column shape: two-decimal prices
// exercise PDE; a few specials (-0.0, a NaN payload) exercise the
// bit-exact escape paths.
func DoubleValues(rng *rand.Rand, s Spec) ([]float64, []int) {
	pool := make([]float64, s.Cardinality)
	for i := range pool {
		switch i % 7 {
		case 5:
			pool[i] = math.Copysign(0, -1)
		case 6:
			pool[i] = math.Float64frombits(0x7ff8_0000_dead_beef) // NaN payload
		default:
			pool[i] = float64(rng.Intn(1_000_000)) / 100
		}
	}
	values := make([]float64, s.Rows)
	runs(rng, s.Rows, s, func(i, p int) { values[i] = pool[p] })
	return values, nullPositions(rng, s)
}

// StringValues generates a string column shape with shared prefixes
// (FSST territory).
func StringValues(rng *rand.Rand, s Spec) ([]string, []int) {
	prefixes := []string{"us-east-", "eu-west-", "ap-", ""}
	pool := make([]string, s.Cardinality)
	for i := range pool {
		pool[i] = fmt.Sprintf("%s%d", prefixes[rng.Intn(len(prefixes))], rng.Intn(1<<16))
	}
	values := make([]string, s.Rows)
	runs(rng, s.Rows, s, func(i, p int) { values[i] = pool[p] })
	return values, nullPositions(rng, s)
}
