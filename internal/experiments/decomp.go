package experiments

import (
	"sync"

	"btrblocks"
	"btrblocks/internal/codec"
	"btrblocks/internal/pbi"
)

// compressedCorpus is a corpus compressed with one format, ready for
// decompression timing.
type compressedCorpus struct {
	format       Format
	names        []string
	blobs        [][]byte
	uncompressed int
	compressed   int
}

func compressCorpus(f Format, corpus []pbi.Dataset) (*compressedCorpus, error) {
	cc := &compressedCorpus{format: f}
	for _, ds := range corpus {
		for _, col := range ds.Chunk.Columns {
			data, err := f.Compress(col)
			if err != nil {
				return nil, err
			}
			cc.names = append(cc.names, col.Name)
			cc.blobs = append(cc.blobs, data)
			cc.uncompressed += col.UncompressedBytes()
			cc.compressed += len(data)
		}
	}
	return cc, nil
}

func (cc *compressedCorpus) ratio() float64 {
	return float64(cc.uncompressed) / float64(cc.compressed)
}

// decompressAll decodes every column with `threads` workers and returns
// wall seconds (best of reps).
func (cc *compressedCorpus) decompressAll(threads, reps int) (float64, error) {
	best := 0.0
	for r := 0; r < reps; r++ {
		var firstErr error
		var mu sync.Mutex
		work := make(chan int)
		var wg sync.WaitGroup
		secs := timeSeconds(func() {
			for w := 0; w < threads; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range work {
						if _, err := cc.format.Scan(cc.blobs[i], cc.names[i]); err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
						}
					}
				}()
			}
			for i := range cc.blobs {
				work <- i
			}
			close(work)
			wg.Wait()
		})
		if firstErr != nil {
			return 0, firstErr
		}
		if r == 0 || secs < best {
			best = secs
		}
	}
	return best, nil
}

// Fig8 regenerates Figure 8: compression ratio vs in-memory multithreaded
// decompression bandwidth for the Parquet and ORC variants and BtrBlocks,
// on the Public BI corpus (top) and TPC-H (bottom).
func Fig8(cfg *Config) error {
	for _, part := range []struct {
		name   string
		corpus []pbi.Dataset
	}{
		{"Public BI", cfg.pbiCorpus()},
		{"TPC-H", cfg.tpchCorpus()},
	} {
		cfg.printf("Figure 8 (%s): ratio vs decompression bandwidth (%d threads)\n", part.name, cfg.threads())
		cfg.printf("%-16s %10s %18s\n", "format", "ratio", "decompression GB/s")
		for _, f := range Fig8Formats() {
			cc, err := compressCorpus(f, part.corpus)
			if err != nil {
				return err
			}
			secs, err := cc.decompressAll(cfg.threads(), cfg.reps())
			if err != nil {
				return err
			}
			cfg.printf("%-16s %10.2f %18.2f\n", f.Name, cc.ratio(), gbps(cc.uncompressed, secs))
		}
		cfg.printf("\n")
	}
	return nil
}

// Table4 regenerates Table 4: per-column compression ratio and
// decompression speed, BtrBlocks vs Parquet+Zstd*, with the root scheme
// BtrBlocks chose for the first block.
func Table4(cfg *Config) error {
	cols := pbi.Table4Columns(cfg.rows(), cfg.seed())
	btrOpt := btrblocks.DefaultOptions()
	btr := BtrFormat(btrOpt)
	zstd := ParquetFormat(codec.Heavy)

	cfg.printf("Table 4: per-column ratio and decompression speed (btr vs parquet+zstd*)\n")
	cfg.printf("%-34s %-8s %9s | %9s %9s | %8s %8s | %s\n",
		"dataset/column", "type", "size MB", "btr GB/s", "zstd GB/s", "btr x", "zstd x", "scheme (root)")
	for _, nc := range cols {
		col := nc.Col
		unc := col.UncompressedBytes()

		bdata, err := btr.Compress(col)
		if err != nil {
			return err
		}
		zdata, err := zstd.Compress(col)
		if err != nil {
			return err
		}
		bsecs, err := timeDecode(btr, bdata, col.Name, cfg.reps())
		if err != nil {
			return err
		}
		zsecs, err := timeDecode(zstd, zdata, col.Name, cfg.reps())
		if err != nil {
			return err
		}
		scheme, _ := btrblocks.Choose(col, btrOpt)
		cfg.printf("%-34s %-8s %9.1f | %9.2f %9.2f | %7.1fx %7.1fx | %s\n",
			nc.Dataset+"/"+nc.Name, col.Type, float64(unc)/1e6,
			gbps(unc, bsecs), gbps(unc, zsecs),
			float64(unc)/float64(len(bdata)), float64(unc)/float64(len(zdata)),
			scheme)
	}
	return nil
}

func timeDecode(f Format, data []byte, name string, reps int) (float64, error) {
	best := 0.0
	for r := 0; r < reps; r++ {
		var err error
		secs := timeSeconds(func() {
			_, err = f.Scan(data, name)
		})
		if err != nil {
			return 0, err
		}
		if r == 0 || secs < best {
			best = secs
		}
	}
	return best, nil
}

// Scalar regenerates the §6.8 ablation: in-memory decompression with the
// optimized kernels, with the naive scalar kernels, and the fastest
// Parquet variant for reference. The paper reports scalar as ~17% slower
// and still 2.3× faster than the fastest Parquet variant.
func Scalar(cfg *Config) error {
	corpus := cfg.pbiCorpus()
	lineup := []Format{
		BtrFormat(btrblocks.DefaultOptions()),
		BtrFormat(&btrblocks.Options{ScalarDecode: true}),
		ParquetFormat(codec.None),
		ParquetFormat(codec.Snappy),
	}
	names := []string{"btrblocks (optimized)", "btrblocks (scalar)", "parquet", "parquet+snappy"}

	cfg.printf("§6.8 scalar-decode ablation (%d threads)\n", cfg.threads())
	cfg.printf("%-24s %18s %10s\n", "configuration", "decompression GB/s", "relative")
	var base float64
	for i, f := range lineup {
		cc, err := compressCorpus(f, corpus)
		if err != nil {
			return err
		}
		secs, err := cc.decompressAll(cfg.threads(), cfg.reps())
		if err != nil {
			return err
		}
		speed := gbps(cc.uncompressed, secs)
		if i == 0 {
			base = speed
		}
		cfg.printf("%-24s %18.2f %9.2fx\n", names[i], speed, speed/base)
	}
	return nil
}
