package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"btrblocks"
	"btrblocks/internal/codec"
	"btrblocks/internal/pbi"
	"btrblocks/internal/s3sim"
)

// s3Formats is the Figure 1 / Table 5 lineup.
func s3Formats() []Format {
	return []Format{
		BtrFormat(btrblocks.DefaultOptions()),
		ParquetFormat(codec.None),
		ParquetFormat(codec.Snappy),
		ParquetFormat(codec.Heavy),
	}
}

// uploadCorpus stores every column of every dataset as one object per
// column (the BtrBlocks S3 layout; the baselines get the same layout so
// the comparison isolates the compression format, as §6.7's full-dataset
// experiment does).
func uploadCorpus(store *s3sim.Store, f Format, corpus []pbi.Dataset) (uncompressed int, keys []string, err error) {
	for _, ds := range corpus {
		for _, col := range ds.Chunk.Columns {
			data, cerr := f.Compress(col)
			if cerr != nil {
				return 0, nil, cerr
			}
			key := f.Name + "/" + ds.Name + "/" + col.Name
			store.Put(key, data)
			keys = append(keys, key)
			uncompressed += col.UncompressedBytes()
		}
	}
	return uncompressed, keys, nil
}

func scanFull(cfg *Config, model s3sim.Model, store *s3sim.Store, f Format, keys []string) (*s3sim.ScanResult, error) {
	objects := make([]s3sim.Object, len(keys))
	for i, k := range keys {
		objects[i] = s3sim.Object{Key: k}
	}
	return model.Scan(store, objects, cfg.threads(), func(key string, data []byte) (int, error) {
		return f.Scan(data, key)
	})
}

// Table5 regenerates Table 5: full-dataset S3 scans of the five largest
// Public BI workbooks — S3 T_r, S3 T_c, scan cost, and cost normalized to
// BtrBlocks.
func Table5(cfg *Config) error {
	corpus := pbi.Largest5(cfg.rows(), cfg.seed())
	model := s3sim.Default()
	model.NetworkGbps = cfg.networkGbps()
	store := s3sim.NewStore()

	type row struct {
		name string
		res  *s3sim.ScanResult
	}
	var rows []row
	for _, f := range s3Formats() {
		_, keys, err := uploadCorpus(store, f, corpus)
		if err != nil {
			return err
		}
		best := &s3sim.ScanResult{}
		for r := 0; r < cfg.reps(); r++ {
			res, err := scanFull(cfg, model, store, f, keys)
			if err != nil {
				return err
			}
			if r == 0 || res.ScanSeconds < best.ScanSeconds {
				best = res
			}
		}
		rows = append(rows, row{f.Name, best})
	}

	base := rows[0].res.CostDollars // btrblocks
	cfg.printf("Table 5: S3 scan cost on the largest 5 Public BI workbooks (%.2f Gbps calibrated network)\n", cfg.networkGbps())
	cfg.printf("%-16s %10s %10s %12s %12s\n", "format", "Tr [GB/s]", "Tc [Gbps]", "cost [$]", "normalized")
	for _, r := range rows {
		cfg.printf("%-16s %10.2f %10.2f %12.6f %11.2fx\n",
			r.name, r.res.TrGbps()/8, r.res.TcGbps(), r.res.CostDollars, r.res.CostDollars/base)
	}
	return nil
}

// Fig1 regenerates Figure 1: the cost vs throughput scatter of S3 scans.
func Fig1(cfg *Config) error {
	corpus := pbi.Largest5(cfg.rows(), cfg.seed())
	model := s3sim.Default()
	model.NetworkGbps = cfg.networkGbps()
	store := s3sim.NewStore()

	cfg.printf("Figure 1: S3 scan cost vs throughput (largest 5 PBI datasets, %.2f Gbps calibrated network)\n", cfg.networkGbps())
	cfg.printf("%-16s %22s %14s\n", "format", "scan throughput [Gbps]", "cost [$]")
	for _, f := range s3Formats() {
		_, keys, err := uploadCorpus(store, f, corpus)
		if err != nil {
			return err
		}
		var best *s3sim.ScanResult
		for r := 0; r < cfg.reps(); r++ {
			res, err := scanFull(cfg, model, store, f, keys)
			if err != nil {
				return err
			}
			if best == nil || res.ScanSeconds < best.ScanSeconds {
				best = res
			}
		}
		cfg.printf("%-16s %22.2f %14.6f\n", f.Name, best.TcGbps(), best.CostDollars)
	}
	return nil
}

// ColumnScan regenerates the §6.7 single-column loading experiment:
// loading individual query columns, where Parquet needs three dependent
// requests per column (footer length, footer, column chunk) while the
// one-file-per-column BtrBlocks layout needs one.
func ColumnScan(cfg *Config) error {
	corpus := pbi.Largest5(cfg.rows(), cfg.seed())
	model := s3sim.Default()
	model.NetworkGbps = cfg.networkGbps()
	store := s3sim.NewStore()
	rng := rand.New(rand.NewSource(cfg.seed()))

	type fmtCost struct {
		name string
		deps int
		f    Format
	}
	lineup := []fmtCost{
		{"btrblocks", 0, BtrFormat(btrblocks.DefaultOptions())},
		{"parquet", 2, ParquetFormat(codec.None)},
		{"parquet+snappy", 2, ParquetFormat(codec.Snappy)},
		{"parquet+zstd*", 2, ParquetFormat(codec.Heavy)},
	}

	// Random "queries" each select ~1/3 of a dataset's columns.
	type query struct{ dataset, column string }
	var queries []query
	for _, ds := range corpus {
		for _, col := range ds.Chunk.Columns {
			if rng.Float64() < 0.34 {
				queries = append(queries, query{ds.Name, col.Name})
			}
		}
	}
	sort.Slice(queries, func(i, j int) bool {
		return queries[i].dataset+queries[i].column < queries[j].dataset+queries[j].column
	})

	cfg.printf("§6.7 single-column S3 loads (%d columns)\n", len(queries))
	cfg.printf("%-16s %12s %10s %14s\n", "format", "cost [$]", "requests", "vs btrblocks")
	var baseCost float64
	for _, fc := range lineup {
		_, _, err := uploadCorpus(store, fc.f, corpus)
		if err != nil {
			return err
		}
		var total float64
		var requests int
		for _, q := range queries {
			key := fc.f.Name + "/" + q.dataset + "/" + q.column
			res, err := model.Scan(store, []s3sim.Object{{Key: key, DependentRequests: fc.deps}}, 1,
				func(key string, data []byte) (int, error) {
					return fc.f.Scan(data, key)
				})
			if err != nil {
				return fmt.Errorf("%s %s/%s: %w", fc.name, q.dataset, q.column, err)
			}
			total += res.CostDollars
			requests += res.Requests
		}
		if fc.name == "btrblocks" {
			baseCost = total
		}
		cfg.printf("%-16s %12.6f %10d %13.2fx\n", fc.name, total, requests, total/baseCost)
	}
	return nil
}
