package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"btrblocks"
	"btrblocks/internal/codec"
	"btrblocks/internal/pbi"
)

// smallCfg keeps experiment runtime testable.
func smallCfg(buf *strings.Builder) *Config {
	return &Config{Rows: 4000, Seed: 42, Threads: 2, Reps: 1, W: buf}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, exp := range []struct {
		name string
		fn   func(*Config) error
	}{
		{"fig1", Fig1},
		{"table2", Table2},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"compspeed", CompressionSpeed},
		{"table3", Table3},
		{"pde-pool", PDEPool},
		{"fig8", Fig8},
		{"table4", Table4},
		{"table5", Table5},
		{"colscan", ColumnScan},
		{"scalar", Scalar},
		{"kernels", Kernels},
		{"selection", SelectionOverhead},
		{"serve", Serve},
	} {
		exp := exp
		t.Run(exp.name, func(t *testing.T) {
			var buf strings.Builder
			if err := exp.fn(smallCfg(&buf)); err != nil {
				t.Fatalf("%s: %v", exp.name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", exp.name)
			}
		})
	}
}

func TestBtrBeatsParquetOnPBIRatioAndSpeed(t *testing.T) {
	// The headline result: on PBI-like data, BtrBlocks decompresses
	// faster than every Parquet variant while compressing better than
	// plain Parquet and the byte-LZ variants.
	corpus := pbi.Corpus(8000, 7)
	btr, err := compressCorpus(BtrFormat(btrblocks.DefaultOptions()), corpus)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []codec.Kind{codec.None, codec.Snappy, codec.LZ4} {
		pq, err := compressCorpus(ParquetFormat(k), corpus)
		if err != nil {
			t.Fatal(err)
		}
		if btr.ratio() <= pq.ratio() {
			t.Errorf("btr ratio %.2f <= parquet(%s) ratio %.2f", btr.ratio(), k, pq.ratio())
		}
	}
	// Decompression speed: measured, so compare with margin.
	btrSecs, err := btr.decompressAll(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	pqz, err := compressCorpus(ParquetFormat(codec.Heavy), corpus)
	if err != nil {
		t.Fatal(err)
	}
	pqzSecs, err := pqz.decompressAll(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if btrSecs >= pqzSecs {
		t.Errorf("btr decompression (%.4fs) not faster than parquet+zstd* (%.4fs)", btrSecs, pqzSecs)
	}
}

func TestExhaustiveBestIsLowerBound(t *testing.T) {
	// The exhaustive-best size must be <= the sampled pick's size.
	corpus := pbi.Corpus(4000, 9)
	truth := buildGroundTruth(corpus[:4])
	if len(truth) == 0 {
		t.Fatal("no ground truth columns")
	}
	for _, gt := range truth {
		choice := chooseWith(gt.col, 10, 64, 42)
		if sz, ok := gt.sizes[choice]; ok && sz < gt.best {
			t.Fatalf("sampled choice beat the exhaustive best: %d < %d", sz, gt.best)
		}
	}
}

func TestPDEFixedCascadeRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := make([]float64, 20000)
	for i := range src {
		src[i] = float64(rng.Intn(100000)) / 100
		if i%701 == 0 {
			src[i] = rng.NormFloat64() * 1e40
		}
	}
	if !verifyPDERoundTrip(src) {
		t.Fatal("fixed PDE cascade does not round-trip")
	}
}

func TestTable3Shape(t *testing.T) {
	// Key relative results of Table 3 must reproduce on the synthetic
	// columns: PDE wins Gov/31, RLE-friendly Gov/26 still compresses
	// hugely with PDE, and PDE fails on NYC/29 coordinates.
	cols := pbi.Table3Columns(32000, 42)
	ratios := map[string]map[string]float64{}
	for _, nc := range cols {
		src := nc.Col.Doubles
		raw := float64(len(src) * 8)
		ratios[nc.Dataset+"/"+nc.Name] = map[string]float64{
			"pde":  raw / float64(pdeFixedCascade(src)),
			"dict": raw / float64(dictFixedCascade(src)),
			"rle":  raw / float64(rleFixedCascade(src)),
			"bp":   raw / float64(bpDirect(src)),
		}
	}
	if r := ratios["CommonGovernment/31"]; r["pde"] < 2 || r["pde"] < r["dict"] {
		t.Errorf("Gov/31: PDE %.2f should clearly beat dict %.2f", r["pde"], r["dict"])
	}
	if r := ratios["NYC/29"]; r["pde"] > 1.5 {
		t.Errorf("NYC/29: PDE %.2f should fail on high-precision coordinates", r["pde"])
	}
	if r := ratios["CommonGovernment/26"]; r["rle"] < 10 {
		t.Errorf("Gov/26: RLE %.2f should be large on long runs", r["rle"])
	}
	if r := ratios["CommonGovernment/40"]; r["rle"] < r["pde"] {
		t.Errorf("Gov/40: RLE %.2f should beat PDE %.2f on very long runs", r["rle"], r["pde"])
	}
}
