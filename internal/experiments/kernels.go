package experiments

import (
	"encoding/binary"
	"math/rand"
	"strings"

	"btrblocks/internal/bitpack"
	"btrblocks/internal/fsst"
)

// kernelIters is how many times each timed section re-decodes its buffer
// so wall times are milliseconds, not microseconds.
const kernelIters = 64

// Kernels regenerates the §6.5 single-core decode trajectory: bit-unpack
// throughput with the generated width-specialized kernels vs the generic
// accumulator loop across widths, end-to-end FOR decode both ways, and
// FSST decode via the jump table vs a per-symbol append loop. These are
// the same quantities pinned by the committed BENCH_decode.json baseline
// (see PERFORMANCE.md); this experiment exists so the curve can be
// re-derived on any host without the benchmark harness.
func Kernels(cfg *Config) error {
	rng := rand.New(rand.NewSource(cfg.seed()))
	n := cfg.rows()
	n -= n % bitpack.BlockLen // whole blocks: both paths decode the same shape

	cfg.printf("§6.5 decode kernels vs generic loop (single core, MB/s of decoded values)\n")
	cfg.printf("%-18s %10s %10s %9s\n", "kernel", "generic", "kernel", "speedup")

	src := make([]uint32, n)
	dst := make([]uint32, n)
	for _, w := range []uint{1, 2, 3, 4, 8, 12, 16, 24, 32} {
		mask := uint32(1)<<w - 1
		if w == 32 {
			mask = ^uint32(0)
		}
		for i := range src {
			src[i] = rng.Uint32() & mask
		}
		packed := bitpack.Pack(nil, src, w)
		blockBytes := bitpack.BlockLen / 8 * int(w) // 2*w words per block
		// Unpack is a single-block primitive: the kernel dispatch fires
		// only for exactly BlockLen values, so walk block by block the
		// way DecodeFOR does.
		gen := kernelTime(cfg, func() {
			for i, off := 0, 0; i < n; i, off = i+bitpack.BlockLen, off+blockBytes {
				if _, err := bitpack.UnpackGeneric(dst[i:], packed[off:], bitpack.BlockLen, w); err != nil {
					panic(err)
				}
			}
		})
		ker := kernelTime(cfg, func() {
			for i, off := 0, 0; i < n; i, off = i+bitpack.BlockLen, off+blockBytes {
				if _, err := bitpack.Unpack(dst[i:], packed[off:], bitpack.BlockLen, w); err != nil {
					panic(err)
				}
			}
		})
		bytes := kernelIters * n * 4
		cfg.printf("unpack width=%-5d %10.0f %10.0f %8.1fx\n", w, mbps(bytes, gen), mbps(bytes, ker), gen/ker)
	}

	ints := make([]int32, n)
	for i := range ints {
		ints[i] = 1_000_000 + rng.Int31n(1<<12)
	}
	enc := bitpack.EncodeFOR(nil, ints)
	intDst := make([]int32, 0, n)
	gen := kernelTime(cfg, func() {
		if _, _, err := bitpack.DecodeFORGeneric(intDst[:0], enc); err != nil {
			panic(err)
		}
	})
	ker := kernelTime(cfg, func() {
		if _, _, err := bitpack.DecodeFOR(intDst[:0], enc); err != nil {
			panic(err)
		}
	})
	bytes := kernelIters * n * 4
	cfg.printf("%-18s %10.0f %10.0f %8.1fx\n", "FOR decode", mbps(bytes, gen), mbps(bytes, ker), gen/ker)

	corpus, table := fsstCorpus(rng, 4*n)
	fenc := table.Encode(nil, corpus)
	fdst := make([]byte, 0, len(corpus))
	gen = kernelTime(cfg, func() {
		var err error
		if fdst, err = fsstDecodeNaive(table, fdst[:0], fenc); err != nil {
			panic(err)
		}
	})
	ker = kernelTime(cfg, func() {
		var err error
		if fdst, err = table.Decode(fdst[:0], fenc); err != nil {
			panic(err)
		}
	})
	bytes = kernelIters * len(corpus)
	cfg.printf("%-18s %10.0f %10.0f %8.1fx\n", "FSST decode", mbps(bytes, gen), mbps(bytes, ker), gen/ker)
	return nil
}

// kernelTime returns the best wall seconds over cfg.reps() of running f
// kernelIters times.
func kernelTime(cfg *Config, f func()) float64 {
	best := 0.0
	for r := 0; r < cfg.reps(); r++ {
		secs := timeSeconds(func() {
			for i := 0; i < kernelIters; i++ {
				f()
			}
		})
		if r == 0 || secs < best {
			best = secs
		}
	}
	return best
}

// fsstCorpus builds an FSST-friendly text corpus (URL-ish fragments plus
// occasional bytes that force escapes) and trains a table on it.
func fsstCorpus(rng *rand.Rand, n int) ([]byte, *fsst.Table) {
	words := []string{"http://", "www.", ".com/", "user", "page", "item", "-", "?id="}
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(words[rng.Intn(len(words))])
		if rng.Intn(13) == 0 {
			sb.WriteByte(byte(rng.Intn(256)))
		}
	}
	corpus := []byte(sb.String())
	return corpus, fsst.Train([][]byte{corpus})
}

// fsstDecodeNaive is the pre-jump-table decoder shape: resolve each code
// through the symbol table and append its bytes with a length-dependent
// copy. Kept here as the "before" side of the §6.5 FSST row.
func fsstDecodeNaive(t *fsst.Table, dst, src []byte) ([]byte, error) {
	var buf [8]byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c == fsst.EscapeCode {
			i++
			if i >= len(src) {
				return dst, fsst.ErrCorrupt
			}
			dst = append(dst, src[i])
			continue
		}
		if int(c) >= t.NumSymbols() {
			return dst, fsst.ErrCorrupt
		}
		s := t.SymbolAt(int(c))
		binary.LittleEndian.PutUint64(buf[:], s.Val)
		dst = append(dst, buf[:s.Len]...)
	}
	return dst, nil
}
