package experiments

import (
	"bytes"
	"fmt"

	"btrblocks"
	"btrblocks/internal/codec"
	"btrblocks/internal/csvconv"
	"btrblocks/internal/parquetlike"
	"btrblocks/internal/pbi"
)

// typeVolume accumulates per-type uncompressed/compressed byte counts.
type typeVolume struct {
	unc  [3]int
	comp [3]int
}

func (v *typeVolume) add(t btrblocks.Type, unc, comp int) {
	v.unc[t] += unc
	v.comp[t] += comp
}

func (v *typeVolume) totalComp() int { return v.comp[0] + v.comp[1] + v.comp[2] }
func (v *typeVolume) totalUnc() int  { return v.unc[0] + v.unc[1] + v.unc[2] }

// share returns type t's share of the format's compressed volume (%).
func (v *typeVolume) share(t btrblocks.Type) float64 {
	if v.totalComp() == 0 {
		return 0
	}
	return 100 * float64(v.comp[t]) / float64(v.totalComp())
}

// ratio returns type t's compression factor.
func (v *typeVolume) ratio(t btrblocks.Type) float64 {
	if v.comp[t] == 0 {
		return 0
	}
	return float64(v.unc[t]) / float64(v.comp[t])
}

func (v *typeVolume) combined() float64 {
	if v.totalComp() == 0 {
		return 0
	}
	return float64(v.totalUnc()) / float64(v.totalComp())
}

func compressCorpusVolume(f Format, corpus []pbi.Dataset) (*typeVolume, error) {
	var vol typeVolume
	for _, ds := range corpus {
		for _, col := range ds.Chunk.Columns {
			data, err := f.Compress(col)
			if err != nil {
				return nil, fmt.Errorf("%s %s/%s: %w", f.Name, ds.Name, col.Name, err)
			}
			vol.add(col.Type, col.UncompressedBytes(), len(data))
		}
	}
	return &vol, nil
}

// Table2 regenerates Table 2: per-data-type volume share and compression
// ratio on the Public BI and TPC-H corpora for every format.
func Table2(cfg *Config) error {
	pbiCorpus := cfg.pbiCorpus()
	tpchCorpus := cfg.tpchCorpus()
	formats := StandardFormats()

	cfg.printf("Table 2: data types by volume share and compression ratio\n")
	cfg.printf("%-16s | %26s | %26s | %26s | %15s\n", "", "String", "Double", "Integer", "Combined")
	cfg.printf("%-16s | %12s %12s | %12s %12s | %12s %12s | %7s %7s\n",
		"format", "PBI sh/cr", "TPCH sh/cr", "PBI sh/cr", "TPCH sh/cr", "PBI sh/cr", "TPCH sh/cr", "PBI", "TPCH")

	types := []btrblocks.Type{btrblocks.TypeString, btrblocks.TypeDouble, btrblocks.TypeInt}
	for _, f := range formats {
		pv, err := compressCorpusVolume(f, pbiCorpus)
		if err != nil {
			return err
		}
		tv, err := compressCorpusVolume(f, tpchCorpus)
		if err != nil {
			return err
		}
		cfg.printf("%-16s |", f.Name)
		for _, t := range types {
			cfg.printf(" %5.1f%%/%5.2f %5.1f%%/%5.2f |", pv.share(t), pv.ratio(t), tv.share(t), tv.ratio(t))
		}
		cfg.printf(" %7.2f %7.2f\n", pv.combined(), tv.combined())
	}
	return nil
}

// CompressionSpeed regenerates the §6.4 inline table: single-threaded
// compression speed from CSV and from the binary in-memory format, plus
// the achieved compression factor, for BtrBlocks, Parquet+Snappy and
// Parquet+Zstd*.
func CompressionSpeed(cfg *Config) error {
	corpus := cfg.pbiCorpus()

	type row struct {
		name string
		do   func(chunk *btrblocks.Chunk) (int, error) // returns compressed size
	}
	btrOpt := btrblocks.DefaultOptions()
	rows := []row{
		{"btrblocks", func(chunk *btrblocks.Chunk) (int, error) {
			total := 0
			for _, col := range chunk.Columns {
				data, err := btrblocks.CompressColumn(col, btrOpt)
				if err != nil {
					return 0, err
				}
				total += len(data)
			}
			return total, nil
		}},
		{"parquet+snappy", func(chunk *btrblocks.Chunk) (int, error) {
			return parquetCompressAll(chunk, codec.Snappy)
		}},
		{"parquet+zstd*", func(chunk *btrblocks.Chunk) (int, error) {
			return parquetCompressAll(chunk, codec.Heavy)
		}},
	}

	// Render the corpus as CSV once; types per dataset for re-parsing.
	type dataset struct {
		csv    []byte
		types  []btrblocks.Type
		chunk  *btrblocks.Chunk
		binary int
	}
	var sets []dataset
	for i := range corpus {
		chunk := corpus[i].Chunk
		csvBytes, err := csvconv.ChunkToCSVBytes(&chunk)
		if err != nil {
			return err
		}
		types := make([]btrblocks.Type, len(chunk.Columns))
		for ci := range chunk.Columns {
			types[ci] = chunk.Columns[ci].Type
		}
		sets = append(sets, dataset{csv: csvBytes, types: types, chunk: &chunk, binary: chunk.UncompressedBytes()})
	}

	cfg.printf("Compression speed (single-threaded), cf. §6.4\n")
	cfg.printf("%-16s %14s %14s %10s\n", "format", "from CSV", "from binary", "factor")
	for _, r := range rows {
		var csvBytes, binBytes, compBytes int
		var fromCSV, fromBin float64
		for _, ds := range sets {
			ds := ds
			// from binary
			var size int
			var err error
			fromBin += timeSeconds(func() {
				size, err = r.do(ds.chunk)
			})
			if err != nil {
				return err
			}
			compBytes += size
			binBytes += ds.binary
			// from CSV: parse + compress
			csvBytes += len(ds.csv)
			fromCSV += timeSeconds(func() {
				chunk, perr := csvconv.ReadChunk(bytes.NewReader(ds.csv), ds.types)
				if perr != nil {
					err = perr
					return
				}
				_, err = r.do(chunk)
			})
			if err != nil {
				return err
			}
		}
		factor := float64(binBytes) / float64(compBytes)
		cfg.printf("%-16s %11.1f MB/s %11.1f MB/s %9.2fx\n",
			r.name, float64(csvBytes)/1e6/fromCSV, float64(binBytes)/1e6/fromBin, factor)
	}
	return nil
}

func parquetCompressAll(chunk *btrblocks.Chunk, k codec.Kind) (int, error) {
	total := 0
	opt := &parquetlike.Options{Codec: k}
	for _, col := range chunk.Columns {
		data, err := parquetlike.CompressColumn(col, opt)
		if err != nil {
			return 0, err
		}
		total += len(data)
	}
	return total, nil
}
