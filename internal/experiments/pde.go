package experiments

import (
	"math"

	"btrblocks/internal/bitpack"
	"btrblocks/internal/floatbase"
	"btrblocks/internal/pbi"
	"btrblocks/internal/pde"
	"btrblocks/internal/roaring"
)

// pdeFixedCascade compresses doubles with Pseudodecimal Encoding followed
// by a fixed FastBP128 second level on both integer outputs — the §6.5
// standalone-evaluation cascade — and returns the total encoded size.
func pdeFixedCascade(src []float64) int {
	digits, exps, patches, patchIdx := pde.Encode(src)
	bm := roaring.New()
	for _, i := range patchIdx {
		bm.Add(i)
	}
	bm.RunOptimize()
	size := bitpack.EncodedSizeFOR(digits)
	size += bitpack.EncodedSizeFOR(exps)
	size += bm.SerializedSize()
	size += 8 * len(patches)
	return size
}

// dictFixedCascade: dictionary of raw doubles + FastBP128 codes.
func dictFixedCascade(src []float64) int {
	seen := make(map[uint64]int32, 1024)
	var ndict int
	codes := make([]int32, len(src))
	for i, v := range src {
		b := math.Float64bits(v)
		id, ok := seen[b]
		if !ok {
			id = int32(ndict)
			seen[b] = id
			ndict++
		}
		codes[i] = id
	}
	return 8*ndict + bitpack.EncodedSizeFOR(codes)
}

// rleFixedCascade: raw run values + FastBP128 run lengths.
func rleFixedCascade(src []float64) int {
	if len(src) == 0 {
		return 4
	}
	var lengths []int32
	runs := 1
	cur := math.Float64bits(src[0])
	n := int32(0)
	for _, v := range src {
		b := math.Float64bits(v)
		if b == cur {
			n++
			continue
		}
		lengths = append(lengths, n)
		runs++
		cur, n = b, 1
	}
	lengths = append(lengths, n)
	return 8*runs + bitpack.EncodedSizeFOR(lengths)
}

// bpDirect: bit packing applied directly to the IEEE 754 words (the
// "should rarely be effective" check).
func bpDirect(src []float64) int {
	// pack each double as two 32-bit halves with FOR
	lo := make([]int32, len(src))
	hi := make([]int32, len(src))
	for i, v := range src {
		b := math.Float64bits(v)
		lo[i] = int32(uint32(b))
		hi[i] = int32(uint32(b >> 32))
	}
	return bitpack.EncodedSizeFOR(lo) + bitpack.EncodedSizeFOR(hi)
}

// Table3 regenerates Table 3: Pseudodecimal Encoding vs FPC, Gorilla,
// Chimp and Chimp128 on the large Public BI double columns. PDE uses the
// fixed PDE→FastBP128 cascade, as in the paper.
func Table3(cfg *Config) error {
	cols := pbi.Table3Columns(cfg.rows(), cfg.seed())
	cfg.printf("Table 3: double-scheme compression ratios (fixed PDE->FastBP128 cascade)\n")
	cfg.printf("%-22s %8s %8s %8s %9s %8s\n", "column", "FPC", "Gorilla", "Chimp", "Chimp128", "PDE")
	for _, nc := range cols {
		src := nc.Col.Doubles
		raw := float64(len(src) * 8)
		fpc := raw / float64(len(floatbase.FPCEncode(nil, src)))
		gor := raw / float64(len(floatbase.GorillaEncode(nil, src)))
		chi := raw / float64(len(floatbase.ChimpEncode(nil, src)))
		c128 := raw / float64(len(floatbase.Chimp128Encode(nil, src)))
		pd := raw / float64(pdeFixedCascade(src))
		cfg.printf("%-22s %8.2f %8.2f %8.2f %9.2f %8.2f\n",
			nc.Dataset+"/"+nc.Name, fpc, gor, chi, c128, pd)
	}
	return nil
}

// PDEPool regenerates the §6.5 inline table: Bit-packing, Dictionary, RLE
// and Pseudodecimal on the same columns, each followed by a fixed
// FastBP128 second level, to check where PDE earns its place in the pool.
func PDEPool(cfg *Config) error {
	cols := pbi.Table3Columns(cfg.rows(), cfg.seed())
	cfg.printf("§6.5: general schemes vs PDE (each -> FastBP128)\n")
	cfg.printf("%-22s %8s %8s %8s %8s\n", "column", "BP", "Dict", "RLE", "PDE")
	for _, nc := range cols {
		src := nc.Col.Doubles
		raw := float64(len(src) * 8)
		cfg.printf("%-22s %8.2f %8.2f %8.2f %8.2f\n",
			nc.Dataset+"/"+nc.Name,
			raw/float64(bpDirect(src)),
			raw/float64(dictFixedCascade(src)),
			raw/float64(rleFixedCascade(src)),
			raw/float64(pdeFixedCascade(src)))
	}
	return nil
}

// verifyPDERoundTrip is used by tests: the fixed cascade must round-trip.
func verifyPDERoundTrip(src []float64) bool {
	digits, exps, patches, patchIdx := pde.Encode(src)
	// encode digits+exps through FastBP and back
	enc := bitpack.EncodeFOR(nil, digits)
	enc = bitpack.EncodeFOR(enc, exps)
	d2, used, err := bitpack.DecodeFOR(nil, enc)
	if err != nil {
		return false
	}
	e2, _, err := bitpack.DecodeFOR(nil, enc[used:])
	if err != nil {
		return false
	}
	out := pde.Decode(nil, d2, e2, patches, patchIdx)
	if len(out) != len(src) {
		return false
	}
	for i := range src {
		if math.Float64bits(out[i]) != math.Float64bits(src[i]) {
			return false
		}
	}
	return true
}
