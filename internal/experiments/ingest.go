package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"btrblocks"
	"btrblocks/internal/ingest"
	"btrblocks/internal/pbi"
	"btrblocks/internal/tpch"
)

// Ingest measures what the ingestion path costs in compression ratio —
// and what background compaction buys back. Rows arrive in small
// batches and publish as small chunks, so every chunk carries its own
// dictionaries, samples and per-file overhead; the compactor then
// merges the accumulation into full target-size blocks, which is where
// the BtrBlocks cascade was designed to operate. For each batch size
// the experiment ingests a Public BI workbook and TPC-H lineitem
// through a real ingest.Service (WAL, flush, atomic publish) and
// reports the compressed size before and after compaction.
func Ingest(cfg *Config) error {
	w := cfg.out()
	fmt.Fprintf(w, "== btringest: small-chunk publish vs post-compaction blocks ==\n")
	fmt.Fprintf(w, "rows/table=%d seed=%d (batch = rows per append+flush; ratio = uncompressed/compressed)\n\n",
		cfg.rows(), cfg.seed())

	datasets := []struct {
		name  string
		chunk btrblocks.Chunk
	}{}
	for _, ds := range pbi.Largest5(cfg.rows(), cfg.seed())[:2] {
		datasets = append(datasets, struct {
			name  string
			chunk btrblocks.Chunk
		}{"pbi/" + ds.Name, ds.Chunk})
	}
	datasets = append(datasets, struct {
		name  string
		chunk btrblocks.Chunk
	}{"tpch/lineitem", tpch.Lineitem(cfg.rows(), cfg.seed())})

	fmt.Fprintf(w, "%-28s %8s %8s %12s %8s %12s %8s %8s\n",
		"dataset", "batch", "chunks", "small B", "ratio", "compacted B", "ratio", "gain")
	for _, ds := range datasets {
		raw := int64(ds.chunk.UncompressedBytes())
		for _, batch := range []int{500, 1000, 4000, 16000, 64000} {
			if batch > ds.chunk.NumRows() {
				continue
			}
			small, chunks, compacted, err := ingestOnce(&ds.chunk, batch)
			if err != nil {
				return fmt.Errorf("%s batch=%d: %w", ds.name, batch, err)
			}
			gain := float64(small-compacted) / float64(small) * 100
			fmt.Fprintf(w, "%-28s %8d %8d %12d %8.2f %12d %8.2f %7.1f%%\n",
				ds.name, batch, chunks, small, float64(raw)/float64(small),
				compacted, float64(raw)/float64(compacted), gain)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "Small batches pay for per-chunk dictionaries, samples and file\n")
	fmt.Fprintf(w, "overhead; compaction re-compresses the accumulation into full\n")
	fmt.Fprintf(w, "%d-value blocks and recovers the ratio of bulk compression.\n", btrblocks.DefaultBlockSize)
	return nil
}

// ingestOnce pushes one table through a throwaway ingest service in
// batches of the given size, then compacts, returning the compressed
// store size before and after (markers excluded) and the level-0 chunk
// count.
func ingestOnce(chunk *btrblocks.Chunk, batch int) (small int64, chunks int, compacted int64, err error) {
	dir, err := os.MkdirTemp("", "btrbench-ingest-*")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)

	svc, err := ingest.Open(ingest.Config{
		Dir:              dir,
		ChunkRows:        1 << 30, // flushes are explicit, one per batch
		FlushInterval:    -1,
		CompactInterval:  -1,
		CompactMinChunks: 2,
		CompactMaxRows:   1 << 30, // one pass merges the whole run
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer svc.Close()

	rows := chunk.NumRows()
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		part := sliceChunk(chunk, lo, hi)
		if _, err := svc.Append("t", &part); err != nil {
			return 0, 0, 0, err
		}
		if err := svc.FlushTable("t"); err != nil {
			return 0, 0, 0, err
		}
	}
	small, err = dirColumnBytes(dir)
	if err != nil {
		return 0, 0, 0, err
	}
	st := svc.Stats()
	if len(st) == 1 {
		chunks = st[0].Chunks
	}
	if err := svc.CompactNow(); err != nil {
		return 0, 0, 0, err
	}
	compacted, err = dirColumnBytes(dir)
	if err != nil {
		return 0, 0, 0, err
	}
	return small, chunks, compacted, nil
}

// sliceChunk copies rows [lo,hi) of a chunk.
func sliceChunk(chunk *btrblocks.Chunk, lo, hi int) btrblocks.Chunk {
	out := btrblocks.Chunk{Columns: make([]btrblocks.Column, len(chunk.Columns))}
	for i := range chunk.Columns {
		src := &chunk.Columns[i]
		dst := &out.Columns[i]
		// Generated corpus names can carry characters the ingest API
		// rejects in identifiers (slashes, spaces); sanitize them.
		dst.Name, dst.Type = ingestName(src.Name), src.Type
		switch src.Type {
		case btrblocks.TypeInt:
			dst.Ints = append([]int32(nil), src.Ints[lo:hi]...)
		case btrblocks.TypeInt64:
			dst.Ints64 = append([]int64(nil), src.Ints64[lo:hi]...)
		case btrblocks.TypeDouble:
			dst.Doubles = append([]float64(nil), src.Doubles[lo:hi]...)
		case btrblocks.TypeString:
			for r := lo; r < hi; r++ {
				dst.Strings = dst.Strings.AppendBytes(src.Strings.View(r))
			}
		}
		if src.Nulls != nil {
			for r := lo; r < hi; r++ {
				if src.Nulls.IsNull(r) {
					if dst.Nulls == nil {
						dst.Nulls = btrblocks.NewNullMask()
					}
					dst.Nulls.SetNull(r - lo)
				}
			}
		}
	}
	return out
}

// ingestName maps an arbitrary generated column name onto the ingest
// API's identifier alphabet.
func ingestName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "col"
	}
	return b.String()
}

// dirColumnBytes sums the .btr column files under a store directory.
func dirColumnBytes(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".btr") {
			fi, err := d.Info()
			if err != nil {
				return err
			}
			total += fi.Size()
		}
		return nil
	})
	return total, err
}
