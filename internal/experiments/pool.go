package experiments

import (
	"sort"

	"btrblocks"
	"btrblocks/internal/codec"
)

// Fig4 regenerates Figure 4: successively enabling encoding schemes per
// data type and measuring the effect on compression ratio and
// single-threaded decompression throughput.
func Fig4(cfg *Config) error {
	corpus := cfg.pbiCorpus()

	type stage struct {
		label string
		opt   *btrblocks.Options
	}
	sets := []struct {
		t      btrblocks.Type
		stages []stage
	}{
		{btrblocks.TypeDouble, []stage{
			{"uncompressed", &btrblocks.Options{DoubleSchemes: []btrblocks.Scheme{}}},
			{"+one value", &btrblocks.Options{DoubleSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue}}},
			{"+rle", &btrblocks.Options{DoubleSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeRLE}}},
			{"+frequency", &btrblocks.Options{DoubleSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeRLE, btrblocks.SchemeFrequency}}},
			{"+dictionary", &btrblocks.Options{DoubleSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeRLE, btrblocks.SchemeFrequency, btrblocks.SchemeDict}}},
			{"+pseudodecimal", &btrblocks.Options{DoubleSchemes: nil}}, // full pool
		}},
		{btrblocks.TypeInt, []stage{
			{"uncompressed", &btrblocks.Options{IntSchemes: []btrblocks.Scheme{}}},
			{"+one value", &btrblocks.Options{IntSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue}}},
			{"+rle", &btrblocks.Options{IntSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeRLE}}},
			{"+bitpack", &btrblocks.Options{IntSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeRLE, btrblocks.SchemeFastBP}}},
			{"+pfor", &btrblocks.Options{IntSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeRLE, btrblocks.SchemeFastBP, btrblocks.SchemeFastPFOR}}},
			{"+dictionary", &btrblocks.Options{IntSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeRLE, btrblocks.SchemeFastBP, btrblocks.SchemeFastPFOR, btrblocks.SchemeDict}}},
			{"+frequency", &btrblocks.Options{IntSchemes: nil}},
		}},
		{btrblocks.TypeString, []stage{
			{"uncompressed", &btrblocks.Options{StringSchemes: []btrblocks.Scheme{}}},
			{"+one value", &btrblocks.Options{StringSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue}}},
			{"+dictionary", &btrblocks.Options{StringSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeDict}}},
			{"+fsst", &btrblocks.Options{StringSchemes: nil}}, // adds FSST and Dict+FSST
		}},
	}

	for _, set := range sets {
		cols := columnsOfType(corpus, set.t)
		cfg.printf("Figure 4 (%s): scheme pool ablation, single-threaded decompression\n", typeName(set.t))
		cfg.printf("%-16s %10s %14s\n", "pool", "ratio", "decomp GB/s")
		for _, st := range set.stages {
			f := BtrFormat(st.opt)
			var unc, comp int
			var blobs [][]byte
			var names []string
			for _, col := range cols {
				data, err := f.Compress(col)
				if err != nil {
					return err
				}
				unc += col.UncompressedBytes()
				comp += len(data)
				blobs = append(blobs, data)
				names = append(names, col.Name)
			}
			best := 0.0
			for r := 0; r < cfg.reps(); r++ {
				var err error
				secs := timeSeconds(func() {
					for i := range blobs {
						if _, e := f.Scan(blobs[i], names[i]); e != nil {
							err = e
							return
						}
					}
				})
				if err != nil {
					return err
				}
				if r == 0 || secs < best {
					best = secs
				}
			}
			cfg.printf("%-16s %10.2f %14.2f\n", st.label, float64(unc)/float64(comp), gbps(unc, best))
		}
		cfg.printf("\n")
	}
	return nil
}

// Fig7 regenerates Figure 7: compression ratios on the Public BI corpus
// for the proprietary column stores A–D (configured stand-ins; the paper
// anonymizes them — see DESIGN.md §4), the Parquet variants and BtrBlocks.
func Fig7(cfg *Config) error {
	corpus := cfg.pbiCorpus()

	dictOnly := &btrblocks.Options{
		IntSchemes:    []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeDict},
		DoubleSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeDict},
		StringSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeDict},
	}
	forStore := &btrblocks.Options{
		IntSchemes:    []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeFastBP},
		DoubleSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeDict},
		StringSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeDict},
	}
	rleDict := &btrblocks.Options{
		IntSchemes:    []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeRLE, btrblocks.SchemeDict},
		DoubleSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeRLE, btrblocks.SchemeDict},
		StringSchemes: []btrblocks.Scheme{btrblocks.SchemeOneValue, btrblocks.SchemeDict},
	}

	lineup := []Format{
		renamed(BtrFormat(dictOnly), "System A"),
		renamed(BtrFormat(forStore), "System B"),
		renamed(BtrFormat(rleDict), "System C"),
		renamed(ORCFormat(codec.Snappy), "System D"),
		ParquetFormat(codec.None),
		ParquetFormat(codec.Snappy),
		ParquetFormat(codec.Heavy),
		BtrFormat(btrblocks.DefaultOptions()),
	}

	type row struct {
		name  string
		ratio float64
	}
	var rows []row
	for _, f := range lineup {
		cc, err := compressCorpus(f, corpus)
		if err != nil {
			return err
		}
		rows = append(rows, row{f.Name, cc.ratio()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio < rows[j].ratio })

	cfg.printf("Figure 7: Public BI compression ratios\n")
	cfg.printf("%-16s %10s\n", "system", "ratio")
	for _, r := range rows {
		cfg.printf("%-16s %10.2f\n", r.name, r.ratio)
	}
	return nil
}

func renamed(f Format, name string) Format {
	f.Name = name
	return f
}
