package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"

	"btrblocks"
	"btrblocks/internal/blockstore"
	"btrblocks/internal/pbi"
)

// Serve measures scans through the networked blockstore: the §6.7
// serving scenario with a real HTTP server in the loop instead of the
// s3sim cost model. The largest five Public BI workbooks are compressed
// one file per column, hosted by a blockstore.Server on a loopback
// listener, and scanned block-by-block through blockstore.Client — once
// cold (every block decoded server-side on demand) and then warm (every
// block answered from the decompressed-block cache). The gap between the
// two lines is what the block cache buys; the count-eq check at the end
// verifies that pushed-down predicates return exactly the local scan's
// answer over the wire.
func Serve(cfg *Config) error {
	corpus := pbi.Largest5(cfg.rows(), cfg.seed())
	copt := btrblocks.DefaultOptions()

	contents := make(map[string][]byte)
	type served struct {
		name string
		data []byte
		col  btrblocks.Column
	}
	var cols []served
	var compressedBytes int
	for _, ds := range corpus {
		for _, col := range ds.Chunk.Columns {
			data, err := btrblocks.CompressColumn(col, copt)
			if err != nil {
				return err
			}
			name := ds.Name + "/" + col.Name
			contents[name] = data
			cols = append(cols, served{name: name, data: data, col: col})
			compressedBytes += len(data)
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].name < cols[j].name })

	store, err := blockstore.NewStore(contents, blockstore.Config{
		CacheBytes:     1 << 30, // hold the whole working set: warm means warm
		PrefetchBlocks: 4,
		Options:        &btrblocks.Options{Telemetry: btrblocks.NewTelemetry()},
	})
	if err != nil {
		return err
	}
	defer store.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: blockstore.NewServer(store)}
	go srv.Serve(ln)
	defer srv.Close()

	ctx := context.Background()
	cl := blockstore.NewClient("http://" + ln.Addr().String())

	scanAll := func() (int64, error) {
		var total int64
		for _, c := range cols {
			_, bytes, err := cl.ScanColumn(ctx, c.name, cfg.threads())
			if err != nil {
				return 0, fmt.Errorf("scan %s: %w", c.name, err)
			}
			total += bytes
		}
		return total, nil
	}

	// Cold: the cache is empty, so every block is decoded server-side.
	var scanned int64
	coldSec := timeSeconds(func() {
		scanned, err = scanAll()
	})
	if err != nil {
		return err
	}
	m := store.Metrics()
	coldDecoded := m.DecodedBlocks.Load()

	// Warm: best of reps (at least two, to keep the cold/warm comparison
	// robust to scheduler noise on small corpora) over the now-resident
	// working set.
	warmReps := cfg.reps()
	if warmReps < 2 {
		warmReps = 2
	}
	warmSec := 0.0
	for r := 0; r < warmReps; r++ {
		sec := timeSeconds(func() {
			_, err = scanAll()
		})
		if err != nil {
			return err
		}
		if r == 0 || sec < warmSec {
			warmSec = sec
		}
	}
	warmDecoded := m.DecodedBlocks.Load() - coldDecoded

	// Predicate pushdown over the wire must agree with the local scan.
	checked := 0
	for _, c := range cols {
		probe, ok := probeValue(c.col)
		if !ok {
			continue
		}
		res, err := cl.CountEq(ctx, c.name, probe)
		if err != nil {
			return fmt.Errorf("count-eq %s: %w", c.name, err)
		}
		want, err := localCountEqual(c.data, c.col.Type, probe)
		if err != nil {
			return err
		}
		if res.Count != want {
			return fmt.Errorf("count-eq %s %q: served %d, local %d", c.name, probe, res.Count, want)
		}
		checked++
	}

	hits, misses := m.CacheHits.Load(), m.CacheMisses.Load()
	cfg.printf("§6.7 served scans through the networked blockstore (%d columns, %d threads)\n",
		len(cols), cfg.threads())
	cfg.printf("%-12s %14s %14s %12s\n", "cache", "scan [GB/s]", "decoded blks", "time [s]")
	cfg.printf("%-12s %14.2f %14d %12.3f\n", "cold", gbps(int(scanned), coldSec), coldDecoded, coldSec)
	cfg.printf("%-12s %14.2f %14d %12.3f\n", "warm", gbps(int(scanned), warmSec), warmDecoded, warmSec)
	cfg.printf("warm speedup: %.2fx; cache hits %d, misses %d; compressed %d bytes served as %d\n",
		coldSec/warmSec, hits, misses, compressedBytes, scanned)
	cfg.printf("count-eq pushdown verified on %d columns\n", checked)
	if warmSec >= coldSec {
		return fmt.Errorf("warm scan (%.3fs) not faster than cold (%.3fs)", warmSec, coldSec)
	}
	return nil
}

// probeValue picks the first non-NULL value of a column as a predicate
// probe, formatted the way the wire protocol expects.
func probeValue(col btrblocks.Column) (string, bool) {
	for i := 0; i < col.Len(); i++ {
		if col.Nulls != nil && col.Nulls.IsNull(i) {
			continue
		}
		switch col.Type {
		case btrblocks.TypeInt:
			return strconv.FormatInt(int64(col.Ints[i]), 10), true
		case btrblocks.TypeInt64:
			return strconv.FormatInt(col.Ints64[i], 10), true
		case btrblocks.TypeDouble:
			return strconv.FormatFloat(col.Doubles[i], 'g', -1, 64), true
		case btrblocks.TypeString:
			return col.Strings.At(i), true
		}
	}
	return "", false
}

// localCountEqual evaluates the same predicate in-process.
func localCountEqual(data []byte, t btrblocks.Type, value string) (int, error) {
	switch t {
	case btrblocks.TypeInt:
		v, err := strconv.ParseInt(value, 10, 32)
		if err != nil {
			return 0, err
		}
		return btrblocks.CountEqualInt32(data, int32(v), nil)
	case btrblocks.TypeInt64:
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return 0, err
		}
		return btrblocks.CountEqualInt64(data, v, nil)
	case btrblocks.TypeDouble:
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return 0, err
		}
		return btrblocks.CountEqualDouble(data, v, nil)
	default:
		return btrblocks.CountEqualString(data, value, nil)
	}
}
