package experiments

import (
	"fmt"

	"btrblocks"
	"btrblocks/internal/core"
	"btrblocks/internal/pbi"
)

// exhaustiveBestSize compresses a column's first block with every
// applicable root scheme (cascades included) and returns the per-scheme
// sizes and the minimum — the "optimal scheme" ground truth of §6.3.
func exhaustiveBestSize(col btrblocks.Column, cfg *core.Config) (sizes map[core.Code]int, best int) {
	sizes = make(map[core.Code]int)
	best = -1
	record := func(code core.Code, enc []byte) {
		if enc == nil {
			return
		}
		sizes[code] = len(enc)
		if best < 0 || len(enc) < best {
			best = len(enc)
		}
	}
	switch col.Type {
	case btrblocks.TypeInt:
		for _, code := range core.IntSchemes() {
			record(code, core.CompressIntAs(nil, col.Ints, code, cfg))
		}
	case btrblocks.TypeDouble:
		for _, code := range core.DoubleSchemes() {
			record(code, core.CompressDoubleAs(nil, col.Doubles, code, cfg))
		}
	case btrblocks.TypeString:
		for _, code := range core.StringSchemes() {
			record(code, core.CompressStringAs(nil, col.Strings, code, cfg))
		}
	}
	return sizes, best
}

// chooseWith runs scheme selection for a column under a specific sampling
// strategy and returns the chosen scheme.
func chooseWith(col btrblocks.Column, runs, runLen int, seed int64) btrblocks.Scheme {
	opt := &btrblocks.Options{SampleRuns: runs, SampleRunLen: runLen, Seed: seed}
	scheme, _ := btrblocks.Choose(col, opt)
	return scheme
}

// firstBlock truncates a column to its first 64k block.
func firstBlock(col btrblocks.Column) btrblocks.Column {
	const bs = 64000
	switch col.Type {
	case btrblocks.TypeInt:
		if len(col.Ints) > bs {
			col.Ints = col.Ints[:bs]
		}
	case btrblocks.TypeDouble:
		if len(col.Doubles) > bs {
			col.Doubles = col.Doubles[:bs]
		}
	case btrblocks.TypeString:
		if col.Strings.Len() > bs {
			col.Strings = col.Strings.Slice(0, bs)
		}
	}
	col.Nulls = nil
	return col
}

// samplingGroundTruth precomputes, for every corpus column, the
// per-scheme full-block sizes and the optimum.
type groundTruth struct {
	col   btrblocks.Column
	sizes map[core.Code]int
	best  int
}

func buildGroundTruth(corpus []pbi.Dataset) []groundTruth {
	cfg := core.DefaultConfig()
	var out []groundTruth
	for _, nc := range allColumns(corpus) {
		col := firstBlock(nc.Col)
		if col.Len() == 0 {
			continue
		}
		sizes, best := exhaustiveBestSize(col, cfg)
		if best <= 0 {
			continue
		}
		out = append(out, groundTruth{col: col, sizes: sizes, best: best})
	}
	return out
}

// Fig5 regenerates Figure 5: the percentage of correct scheme choices for
// different sampling strategies with a fixed sample size of 640 tuples.
// A choice is correct when its full-block compressed size is within 2% of
// the exhaustive optimum (footnote 2 of the paper).
func Fig5(cfg *Config) error {
	corpus := cfg.pbiCorpus()
	truth := buildGroundTruth(corpus)

	strategies := []struct {
		label        string
		runs, runLen int
	}{
		{"single (640x1)", 640, 1},
		{"320x2", 320, 2},
		{"80x8", 80, 8},
		{"40x16", 40, 16},
		{"10x64", 10, 64},
		{"5x128", 5, 128},
		{"range (1x640)", 1, 640},
	}

	const seeds = 5 // average out sample placement, like the paper's repeats
	cfg.printf("Figure 5: correct scheme choices per sampling strategy (N=640, %d columns)\n", len(truth))
	cfg.printf("%-16s %10s\n", "strategy", "correct %")
	for _, st := range strategies {
		correct, trials := 0, 0
		for _, gt := range truth {
			for sd := int64(0); sd < seeds; sd++ {
				choice := chooseWith(gt.col, st.runs, st.runLen, cfg.seed()+sd)
				size, ok := gt.sizes[choice]
				if ok && float64(size) <= 1.02*float64(gt.best) {
					correct++
				}
				trials++
			}
		}
		cfg.printf("%-16s %9.1f%%\n", st.label, 100*float64(correct)/float64(trials))
	}
	return nil
}

// Fig6 regenerates Figure 6: total compressed size loss vs the optimum
// for growing sample sizes (10 runs of 8..4096 tuples, plus the entire
// block).
func Fig6(cfg *Config) error {
	corpus := cfg.pbiCorpus()
	truth := buildGroundTruth(corpus)
	optimal := 0
	for _, gt := range truth {
		optimal += gt.best
	}

	sizes := []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	cfg.printf("Figure 6: compressed size vs sample size (%d columns)\n", len(truth))
	cfg.printf("%-14s %14s %12s\n", "strategy", "sampled %", "vs optimum")
	const seeds = 5
	run := func(label string, runs, runLen int, sampledFrac float64) {
		total := 0.0
		for _, gt := range truth {
			for sd := int64(0); sd < seeds; sd++ {
				choice := chooseWith(gt.col, runs, runLen, cfg.seed()+sd)
				if sz, ok := gt.sizes[choice]; ok {
					total += float64(sz) / seeds
				} else {
					// scheme not applicable at full block: fall back to
					// the worst recorded size (a mischoice)
					worst := 0
					for _, sz := range gt.sizes {
						if sz > worst {
							worst = sz
						}
					}
					total += float64(worst) / seeds
				}
			}
		}
		cfg.printf("%-14s %13.2f%% %+11.2f%%\n", label, sampledFrac*100,
			100*(total/float64(optimal)-1))
	}
	for _, rl := range sizes {
		run(fmt.Sprintf("10x%d", rl), 10, rl, float64(10*rl)/64000)
	}
	run("entire block", 1, 64000, 1)
	return nil
}

// SelectionOverhead reports the §3.1 measurement: the share of total
// compression time spent in scheme selection (statistics + sampling +
// estimation). Both sides are measured: the full compression pipeline and
// the selection machinery alone (statistics, sample gathering, per-scheme
// sample compression) via the EstimateOnly hooks.
func SelectionOverhead(cfg *Config) error {
	corpus := cfg.pbiCorpus()
	cols := allColumns(corpus)
	opt := btrblocks.DefaultOptions()
	coreCfg := core.DefaultConfig()

	var totalSecs float64
	for _, nc := range cols {
		col := nc.Col
		var err error
		totalSecs += timeSeconds(func() {
			_, err = btrblocks.CompressColumn(col, opt)
		})
		if err != nil {
			return err
		}
	}
	var selectSecs float64
	for _, nc := range cols {
		col := nc.Col
		selectSecs += timeSeconds(func() {
			switch col.Type {
			case btrblocks.TypeInt:
				core.EstimateOnlyInt(col.Ints, coreCfg)
			case btrblocks.TypeDouble:
				core.EstimateOnlyDouble(col.Doubles, coreCfg)
			case btrblocks.TypeString:
				core.EstimateOnlyString(col.Strings, coreCfg)
			}
		})
	}
	cfg.printf("§3.1 scheme selection overhead: selection %.3fs of %.3fs total (%.1f%%)\n",
		selectSecs, totalSecs, 100*selectSecs/totalSecs)
	cfg.printf("  (paper: 1.2%% — the gap is pure-Go map-based statistics vs the\n")
	cfg.printf("   C++ implementation's vectorized stats pass; see EXPERIMENTS.md)\n")
	return nil
}
