package experiments

import (
	"btrblocks"
	"btrblocks/internal/pbi"
)

// Schemes reports which schemes the sampling-based selection algorithm
// actually picks on the evaluation corpora, from compression telemetry:
// root-scheme frequencies per column type, cascade-level picks per stream
// kind, used cascade depth, and the achieved-ratio histogram — the
// telemetry-side companion to Table 2's volume shares.
func Schemes(cfg *Config) error {
	corpora := []struct {
		name   string
		corpus []pbi.Dataset
	}{
		{"Public BI", cfg.pbiCorpus()},
		{"TPC-H", cfg.tpchCorpus()},
	}
	cfg.printf("Scheme selection telemetry (cf. Table 2)\n")
	for _, c := range corpora {
		rec := btrblocks.NewTelemetry()
		opt := btrblocks.DefaultOptions()
		opt.Telemetry = rec
		for _, ds := range c.corpus {
			for _, col := range ds.Chunk.Columns {
				if _, err := btrblocks.CompressColumn(col, opt); err != nil {
					return err
				}
			}
		}
		snap := rec.Snapshot()
		cfg.printf("\n== %s corpus ==\n%s", c.name, snap.Report())
	}
	return nil
}
