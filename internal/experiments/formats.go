// Package experiments regenerates every table and figure of the paper's
// evaluation section (§6). Each experiment has one exported function that
// runs the workload on the synthetic Public BI / TPC-H corpora and prints
// the same rows or series the paper reports; `cmd/btrbench` maps
// subcommands onto these functions and EXPERIMENTS.md records paper-vs-
// measured values. Absolute numbers differ from the paper (pure Go,
// different hardware, synthetic data); the comparisons of interest are
// the relative ones within each experiment.
package experiments

import (
	"encoding/binary"
	"fmt"
	"math"

	"btrblocks"
	"btrblocks/internal/codec"
	"btrblocks/internal/orclike"
	"btrblocks/internal/parquetlike"
)

// Format abstracts one storage format under comparison: BtrBlocks, the
// Parquet-like baseline with its codec variants, the ORC-like baseline,
// or raw binary.
type Format struct {
	Name       string
	Compress   func(col btrblocks.Column) ([]byte, error)
	Decompress func(data []byte, name string) (btrblocks.Column, error)
	// Scan decompresses data on the format's cheapest faithful path and
	// returns the uncompressed size it produced. For BtrBlocks this is
	// the no-copy string-views path (§5); for the baselines it is full
	// materialization, which their formats require.
	Scan func(data []byte, name string) (int, error)
}

// BtrFormat returns the BtrBlocks format with the given options.
func BtrFormat(opt *btrblocks.Options) Format {
	return Format{
		Name: "btrblocks",
		Compress: func(col btrblocks.Column) ([]byte, error) {
			return btrblocks.CompressColumn(col, opt)
		},
		Decompress: func(data []byte, name string) (btrblocks.Column, error) {
			return btrblocks.DecompressColumn(data, opt)
		},
		Scan: func(data []byte, name string) (int, error) {
			t, err := btrblocks.ColumnFileType(data)
			if err != nil {
				return 0, err
			}
			if t == btrblocks.TypeString {
				views, _, err := btrblocks.DecompressStringViews(data, opt)
				if err != nil {
					return 0, err
				}
				total := 0
				for _, v := range views {
					for i := range v.Views {
						total += int(v.Views[i].Len)
					}
					total += 4 * v.Len()
				}
				return total, nil
			}
			col, err := btrblocks.DecompressColumn(data, opt)
			if err != nil {
				return 0, err
			}
			return col.UncompressedBytes(), nil
		},
	}
}

// ParquetFormat returns the Parquet-like baseline with a codec.
func ParquetFormat(k codec.Kind) Format {
	name := "parquet"
	if k != codec.None {
		name += "+" + k.String()
	}
	opt := &parquetlike.Options{Codec: k}
	return Format{
		Name: name,
		Compress: func(col btrblocks.Column) ([]byte, error) {
			return parquetlike.CompressColumn(col, opt)
		},
		Decompress: parquetlike.DecompressColumn,
		Scan:       materializingScan(parquetlike.DecompressColumn),
	}
}

// ORCFormat returns the ORC-like baseline with a codec.
func ORCFormat(k codec.Kind) Format {
	name := "orc"
	if k != codec.None {
		name += "+" + k.String()
	}
	opt := &orclike.Options{Codec: k}
	return Format{
		Name: name,
		Compress: func(col btrblocks.Column) ([]byte, error) {
			return orclike.CompressColumn(col, opt)
		},
		Decompress: orclike.DecompressColumn,
		Scan:       materializingScan(orclike.DecompressColumn),
	}
}

// UncompressedFormat stores columns in the in-memory binary layout
// (4 B/int, 8 B/double, payload + 4 B offset per string).
func UncompressedFormat() Format {
	return Format{
		Name:       "uncompressed",
		Compress:   rawCompress,
		Decompress: rawDecompress,
		Scan:       materializingScan(rawDecompress),
	}
}

func rawCompress(col btrblocks.Column) ([]byte, error) {
	var out []byte
	out = append(out, byte(col.Type))
	out = binary.LittleEndian.AppendUint32(out, uint32(col.Len()))
	switch col.Type {
	case btrblocks.TypeInt:
		for _, v := range col.Ints {
			out = binary.LittleEndian.AppendUint32(out, uint32(v))
		}
	case btrblocks.TypeDouble:
		for _, v := range col.Doubles {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	case btrblocks.TypeString:
		for i := 0; i <= col.Len(); i++ {
			off := uint32(0)
			if len(col.Strings.Offsets) > 0 {
				off = col.Strings.Offsets[i]
			}
			out = binary.LittleEndian.AppendUint32(out, off)
		}
		out = append(out, col.Strings.Data...)
	}
	return out, nil
}

func rawDecompress(data []byte, name string) (btrblocks.Column, error) {
	var col btrblocks.Column
	col.Name = name
	if len(data) < 5 {
		return col, fmt.Errorf("raw: short column")
	}
	col.Type = btrblocks.Type(data[0])
	n := int(binary.LittleEndian.Uint32(data[1:]))
	pos := 5
	switch col.Type {
	case btrblocks.TypeInt:
		col.Ints = make([]int32, n)
		for i := range col.Ints {
			col.Ints[i] = int32(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
		}
	case btrblocks.TypeDouble:
		col.Doubles = make([]float64, n)
		for i := range col.Doubles {
			col.Doubles[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
		}
	case btrblocks.TypeString:
		offsets := make([]uint32, n+1)
		for i := range offsets {
			offsets[i] = binary.LittleEndian.Uint32(data[pos:])
			pos += 4
		}
		col.Strings.Offsets = offsets
		col.Strings.Data = append([]byte(nil), data[pos:]...)
	}
	return col, nil
}

// StandardFormats returns the format lineup of Table 2 and Figure 1:
// uncompressed, Parquet with each codec, and BtrBlocks.
func StandardFormats() []Format {
	return []Format{
		UncompressedFormat(),
		ParquetFormat(codec.None),
		ParquetFormat(codec.LZ4),
		ParquetFormat(codec.Snappy),
		ParquetFormat(codec.Heavy),
		BtrFormat(btrblocks.DefaultOptions()),
	}
}

// Fig8Formats returns the Figure 8 lineup: Parquet and ORC variants plus
// BtrBlocks.
func Fig8Formats() []Format {
	return []Format{
		ParquetFormat(codec.None),
		ParquetFormat(codec.Snappy),
		ParquetFormat(codec.Heavy),
		ORCFormat(codec.None),
		ORCFormat(codec.Snappy),
		ORCFormat(codec.Heavy),
		BtrFormat(btrblocks.DefaultOptions()),
	}
}

// materializingScan wraps a full Decompress as a Scan.
func materializingScan(dec func(data []byte, name string) (btrblocks.Column, error)) func([]byte, string) (int, error) {
	return func(data []byte, name string) (int, error) {
		col, err := dec(data, name)
		if err != nil {
			return 0, err
		}
		return col.UncompressedBytes(), nil
	}
}
