package experiments

import (
	"context"
	"fmt"

	"btrblocks"
	"btrblocks/internal/obs"
	"btrblocks/internal/pbi"
)

// Spans measures what span tracing costs on the decode hot path: the
// largest five Public BI workbooks are compressed once, then scanned
// repeatedly under three tracing regimes — off (no span in the context,
// the production default when no request is traced), head-sampled
// (1 in 64 scans carries a root span), and always (every scan traced,
// every per-block task a child span). The off row is the baseline the
// nil-recorder fast path must defend; the zero-allocation property it
// relies on is pinned by TestDecodeDisabledTracingZeroAlloc.
func Spans(cfg *Config) error {
	corpus := pbi.Largest5(cfg.rows(), cfg.seed())
	copt := btrblocks.DefaultOptions()

	type served struct {
		name string
		data []byte
	}
	var cols []served
	var rawBytes int
	for _, ds := range corpus {
		for _, col := range ds.Chunk.Columns {
			data, err := btrblocks.CompressColumn(col, copt)
			if err != nil {
				return err
			}
			cols = append(cols, served{name: ds.Name + "/" + col.Name, data: data})
			rawBytes += col.UncompressedBytes()
		}
	}
	dopt := &btrblocks.Options{Parallelism: cfg.threads()}

	scanAll := func(rec *obs.SpanRecorder, sampleLabel string) error {
		for _, c := range cols {
			ctx, root := rec.StartRoot(context.Background(), "bench.scan")
			root.SetAttr("column", c.name)
			root.SetAttr("mode", sampleLabel)
			if _, err := btrblocks.DecompressColumnContext(ctx, c.data, dopt); err != nil {
				return fmt.Errorf("scan %s: %w", c.name, err)
			}
			root.End()
		}
		return nil
	}

	type mode struct {
		name string
		rec  *obs.SpanRecorder
	}
	modes := []mode{
		{"off", nil},
		{"sampled-1/64", obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "btrbench", SampleEvery: 64})},
		{"always", obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "btrbench", SampleEvery: 1})},
	}

	cfg.printf("span tracing overhead on the decode path (%d columns, %d threads, best of %d)\n",
		len(cols), cfg.threads(), cfg.reps())
	cfg.printf("%-14s %12s %12s %14s\n", "tracing", "scan [GB/s]", "time [s]", "spans recorded")
	baseline := 0.0
	for _, m := range modes {
		best := 0.0
		for r := 0; r < cfg.reps(); r++ {
			var err error
			sec := timeSeconds(func() {
				err = scanAll(m.rec, m.name)
			})
			if err != nil {
				return err
			}
			if r == 0 || sec < best {
				best = sec
			}
		}
		recorded := uint64(0)
		if m.rec.Enabled() {
			recorded = m.rec.Stats().Recorded
		}
		suffix := ""
		if m.name == "off" {
			baseline = best
		} else if baseline > 0 {
			suffix = fmt.Sprintf("   (%+.1f%% vs off)", (best/baseline-1)*100)
		}
		cfg.printf("%-14s %12.2f %12.3f %14d%s\n", m.name, gbps(rawBytes, best), best, recorded, suffix)
	}
	return nil
}
