package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"btrblocks"
	"btrblocks/internal/pbi"
	"btrblocks/internal/tpch"
)

// Config scales and directs an experiment run.
type Config struct {
	// Rows is the number of rows per generated table (default 64,000 —
	// one full block per column). The paper's corpora are far larger;
	// rows scale the workload without changing its distributions.
	Rows int
	// Seed drives the deterministic generators.
	Seed int64
	// Threads is the parallelism for multithreaded decompression
	// experiments (default GOMAXPROCS).
	Threads int
	// Reps repeats timed sections to stabilize measurements (default 3).
	Reps int
	// NetworkGbps overrides the simulated network bandwidth for the S3
	// experiments. The default (0.6 Gbps) preserves the paper's
	// network-to-compute ratio: the paper pairs a 100 Gbit NIC with 36
	// AVX2 cores decompressing ~50 GB/s; this pure-Go implementation
	// decompresses ~100x slower, so the network is scaled likewise. In
	// that regime weakly-compressed Parquet is network-bound, the
	// heavyweight variants are CPU-bound, and BtrBlocks sits almost
	// exactly at the line — the §6.7 result.
	NetworkGbps float64
	// W receives the formatted experiment output (default os.Stdout).
	W io.Writer
}

func (c *Config) rows() int {
	if c == nil || c.Rows <= 0 {
		return 64000
	}
	return c.Rows
}

func (c *Config) seed() int64 {
	if c == nil || c.Seed == 0 {
		return 42
	}
	return c.Seed
}

func (c *Config) threads() int {
	if c == nil || c.Threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Threads
}

func (c *Config) networkGbps() float64 {
	if c == nil || c.NetworkGbps <= 0 {
		return 0.6
	}
	return c.NetworkGbps
}

func (c *Config) reps() int {
	if c == nil || c.Reps <= 0 {
		return 3
	}
	return c.Reps
}

func (c *Config) out() io.Writer {
	if c == nil || c.W == nil {
		return os.Stdout
	}
	return c.W
}

func (c *Config) printf(format string, args ...any) {
	fmt.Fprintf(c.out(), format, args...)
}

// pbiCorpus and tpchCorpus generate the evaluation corpora.
func (c *Config) pbiCorpus() []pbi.Dataset { return pbi.Corpus(c.rows(), c.seed()) }

func (c *Config) tpchCorpus() []pbi.Dataset {
	out := make([]pbi.Dataset, 0, 3)
	for _, ds := range tpch.Corpus(c.rows(), c.seed()) {
		out = append(out, pbi.Dataset{Name: ds.Name, Chunk: ds.Chunk})
	}
	return out
}

// allColumns flattens a corpus into named columns.
func allColumns(corpus []pbi.Dataset) []pbi.NamedColumn {
	var out []pbi.NamedColumn
	for _, ds := range corpus {
		for _, col := range ds.Chunk.Columns {
			out = append(out, pbi.NamedColumn{Dataset: ds.Name, Name: col.Name, Col: col})
		}
	}
	return out
}

// columnsOfType filters a corpus by column type.
func columnsOfType(corpus []pbi.Dataset, t btrblocks.Type) []btrblocks.Column {
	var out []btrblocks.Column
	for _, ds := range corpus {
		for _, col := range ds.Chunk.Columns {
			if col.Type == t {
				out = append(out, col)
			}
		}
	}
	return out
}

// timeSeconds measures f's wall time.
func timeSeconds(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// gbps converts bytes and seconds to GB/s.
func gbps(bytes int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / 1e9 / seconds
}

// mbps converts bytes and seconds to MB/s.
func mbps(bytes int, seconds float64) float64 {
	return 1000 * gbps(bytes, seconds)
}

// typeName maps a type to the Table 2 column label.
func typeName(t btrblocks.Type) string {
	switch t {
	case btrblocks.TypeInt:
		return "Integer"
	case btrblocks.TypeDouble:
		return "Double"
	case btrblocks.TypeString:
		return "String"
	}
	return "?"
}
