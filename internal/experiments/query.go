package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"

	"btrblocks"
	"btrblocks/internal/query"
	"btrblocks/metadata"
)

// Query measures the query engine over compressed data, in two parts.
//
// Part 1 is block pruning: a sorted timestamp column is compressed in
// small blocks with its BTRM sidecar, and a narrow range plan (a time
// window) is executed with and without the sidecar attached. The
// sidecar run must answer identically while scanning only the blocks
// whose [min,max] intersect the window — on sorted data that skips the
// vast majority of blocks before any compressed byte is touched.
//
// Part 2 is compressed-domain evaluation vs decode-then-filter: for
// predicate shapes where the stored scheme has a native path (dict-code
// probes for string equality, RLE run skipping, FOR/bitpack min-max
// arithmetic), the executor's answer is timed against a baseline that
// decompresses every block and filters the materialized values. The
// paths column shows which compressed-domain kernels actually fired.
func Query(cfg *Config) error {
	if err := queryPruning(cfg); err != nil {
		return err
	}
	return queryCompressedDomain(cfg)
}

// queryCol compresses one column and wraps it as an executor source.
func queryCol(col btrblocks.Column, opt *btrblocks.Options, withMeta bool) (query.MemSource, int, error) {
	data, err := btrblocks.CompressColumn(col, opt)
	if err != nil {
		return nil, 0, err
	}
	ix, err := btrblocks.ParseColumnIndex(data)
	if err != nil {
		return nil, 0, err
	}
	c := &query.Col{Index: ix, Data: data}
	if withMeta {
		m := metadata.Build(col, opt)
		c.Meta = &m
	}
	return query.MemSource{col.Name: c}, len(data), nil
}

func queryPruning(cfg *Config) error {
	rows := cfg.rows()
	if rows < 16000 {
		rows = 16000 // enough blocks that pruning has something to skip
	}
	opt := &btrblocks.Options{BlockSize: 4096}
	ts := make([]int64, rows)
	for i := range ts {
		ts[i] = 1_600_000_000_000 + int64(i)*250 // 4 events/s, sorted
	}
	col := btrblocks.Int64Column("event_ts", ts)

	lo, hi := rows/2, rows/2+rows/40 // a 2.5% time window
	plan := &query.Plan{
		Filter: &query.Node{Op: "range", Column: "event_ts",
			Lo: []byte(strconv.FormatInt(ts[lo], 10)),
			Hi: []byte(strconv.FormatInt(ts[hi], 10))},
		Aggregates: []query.AggSpec{{Op: "count", Column: "event_ts"}},
	}

	cfg.printf("query engine: block pruning on a sorted timestamp column (%d rows, %d-row blocks)\n",
		rows, opt.BlockSize)
	cfg.printf("%-14s %8s %8s %8s %10s %12s %9s\n",
		"sidecar", "blocks", "scanned", "pruned", "matched", "bytes read", "time [ms]")
	for _, withMeta := range []bool{false, true} {
		src, _, err := queryCol(col, opt, withMeta)
		if err != nil {
			return err
		}
		e := &query.Executor{Source: src, Options: opt}
		var res *query.Result
		secs := bestOf(cfg.reps(), func() {
			var err error
			res, err = e.Run(context.Background(), plan)
			if err != nil {
				panic(err)
			}
		})
		if res.Matched != int64(hi-lo+1) {
			return fmt.Errorf("pruned run changed the answer: matched %d, want %d", res.Matched, hi-lo+1)
		}
		// Bytes of compressed block data a reader with this sidecar state
		// must fetch — the S3-GET cost the paper's §6.7 scenario prices.
		c := src[col.Name]
		read := 0
		scanned := map[int]bool{}
		if c.Meta != nil {
			for _, b := range c.Meta.PruneInt64Range(ts[lo], ts[hi]) {
				scanned[b] = true
			}
		}
		for b, ref := range c.Index.Blocks {
			if c.Meta == nil || scanned[b] {
				read += ref.DataBytes
			}
		}
		label := "none"
		if withMeta {
			label = "btrm"
			if res.Stats.BlocksPruned*2 <= res.Stats.BlocksTotal {
				return fmt.Errorf("sidecar pruned only %d of %d blocks on sorted data",
					res.Stats.BlocksPruned, res.Stats.BlocksTotal)
			}
		}
		cfg.printf("%-14s %8d %8d %8d %10d %12d %9.2f\n", label,
			res.Stats.BlocksTotal, res.Stats.BlocksScanned, res.Stats.BlocksPruned,
			res.Matched, read, secs*1e3)
	}
	cfg.printf("the sidecar answers the window without touching the pruned blocks'\n" +
		"bytes at all (object-store GETs in the lake setting); CPU time is close\n" +
		"because FOR mini-block min-max skipping already shortcuts sorted data.\n\n")
	return nil
}

// decodeFilterCount is the baseline: decompress every block and filter
// the materialized values with a plain loop.
func decodeFilterCount(src query.MemSource, name string, match func(btrblocks.Column, int) bool, opt *btrblocks.Options) (int, error) {
	c := src[name]
	count := 0
	for b := range c.Index.Blocks {
		blk, err := c.Index.DecompressBlock(c.Data, b, opt)
		if err != nil {
			return 0, err
		}
		for i := 0; i < blk.Len(); i++ {
			if blk.Nulls != nil && blk.Nulls.IsNull(i) {
				continue
			}
			if match(blk, i) {
				count++
			}
		}
	}
	return count, nil
}

func queryCompressedDomain(cfg *Config) error {
	rng := rand.New(rand.NewSource(cfg.seed()))
	rows := cfg.rows()
	opt := &btrblocks.Options{BlockSize: 4096}

	// Columns shaped so specific schemes (and so specific compressed-
	// domain paths) win the cascade's size contest.
	regions := make([]string, rows)
	for i := range regions {
		regions[i] = fmt.Sprintf("region-%02d", rng.Intn(24))
	}
	status := make([]int32, rows)
	for i := 0; i < rows; {
		run := 1 + rng.Intn(400)
		v := int32(rng.Intn(5) * 100)
		for j := 0; j < run && i < rows; j++ {
			status[i] = v
			i++
		}
	}
	seq := make([]int32, rows)
	for i := range seq {
		seq[i] = 5_000_000 + int32(i) + rng.Int31n(64) // near-sorted ids
	}
	seqLo := 5_000_000 + int32(rows)/4
	seqHi := seqLo + int32(rows)/8

	type workload struct {
		name  string
		col   btrblocks.Column
		plan  *query.Plan
		match func(btrblocks.Column, int) bool
	}
	cases := []workload{
		{
			name: "dict eq (string)",
			col:  btrblocks.StringColumn("region", regions),
			plan: &query.Plan{Filter: &query.Node{Op: "eq", Column: "region",
				Value: []byte(`"region-07"`)}},
			match: func(c btrblocks.Column, i int) bool { return c.Strings.At(i) == "region-07" },
		},
		{
			name: "rle range (int)",
			col:  btrblocks.IntColumn("status", status),
			plan: &query.Plan{Filter: &query.Node{Op: "range", Column: "status",
				Lo: []byte("200"), Hi: []byte("300")}},
			match: func(c btrblocks.Column, i int) bool { return c.Ints[i] >= 200 && c.Ints[i] <= 300 },
		},
		{
			name: "for range (int)",
			col:  btrblocks.IntColumn("seq", seq),
			plan: &query.Plan{Filter: &query.Node{Op: "range", Column: "seq",
				Lo: []byte(strconv.FormatInt(int64(seqLo), 10)),
				Hi: []byte(strconv.FormatInt(int64(seqHi), 10))}},
			match: func(c btrblocks.Column, i int) bool { return c.Ints[i] >= seqLo && c.Ints[i] <= seqHi },
		},
	}

	cfg.printf("query engine: compressed-domain evaluation vs decode-then-filter (%d rows)\n", rows)
	cfg.printf("%-18s %10s %12s %12s %9s  %s\n", "predicate", "matched", "decode [ms]", "direct [ms]", "speedup", "paths fired")
	for _, w := range cases {
		src, _, err := queryCol(w.col, opt, false)
		if err != nil {
			return err
		}
		e := &query.Executor{Source: src, Options: opt}
		var res *query.Result
		direct := bestOf(cfg.reps(), func() {
			var err error
			res, err = e.Run(context.Background(), w.plan)
			if err != nil {
				panic(err)
			}
		})
		var base int
		decode := bestOf(cfg.reps(), func() {
			var err error
			base, err = decodeFilterCount(src, w.col.Name, w.match, opt)
			if err != nil {
				panic(err)
			}
		})
		if int64(base) != res.Matched {
			return fmt.Errorf("%s: compressed-domain matched %d, decode-filter %d", w.name, res.Matched, base)
		}
		p := res.Stats.Paths
		cfg.printf("%-18s %10d %12.2f %12.2f %8.1fx  dict=%d rle=%d for=%d(+%d skipped) decoded=%d\n",
			w.name, res.Matched, decode*1e3, direct*1e3, decode/direct,
			p.Dict, p.RLE, p.FORScanned, p.FORSkipped, p.Decoded)
	}
	return nil
}

// bestOf runs f reps times and returns the fastest wall time.
func bestOf(reps int, f func()) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		s := timeSeconds(f)
		if r == 0 || s < best {
			best = s
		}
	}
	return best
}
