package experiments

import (
	"fmt"
	"runtime"

	"btrblocks"
)

// Threads regenerates the §6.4-style multithreaded decompression scaling
// curve: the PBI corpus is compressed once, then every chunk is
// decompressed end to end at 1/2/4/8 workers (Options.Parallelism) and
// the best-of-reps throughput is reported with the speedup over the
// single-worker baseline. Per-chunk decompression fans out across
// (column, block) tasks, so the curve measures the shared parallel
// decode engine — the knob every decode path honors.
func Threads(cfg *Config) error {
	corpus := cfg.pbiCorpus()
	type compressed struct {
		name string
		cc   *btrblocks.CompressedChunk
	}
	var chunks []compressed
	uncompressedBytes := 0
	compressedBytes := 0
	for _, ds := range corpus {
		chunk := ds.Chunk
		cc, err := btrblocks.CompressChunk(&chunk, nil)
		if err != nil {
			return fmt.Errorf("compress %s: %v", ds.Name, err)
		}
		chunks = append(chunks, compressed{ds.Name, cc})
		for _, col := range ds.Chunk.Columns {
			uncompressedBytes += col.UncompressedBytes()
		}
		compressedBytes += cc.CompressedBytes()
	}

	cfg.printf("multithreaded chunk decompression (§6.4), PBI corpus\n")
	cfg.printf("datasets: %d, rows/table: %d, uncompressed: %.1f MB, compressed: %.1f MB\n",
		len(chunks), cfg.rows(), float64(uncompressedBytes)/1e6, float64(compressedBytes)/1e6)
	cfg.printf("host: GOMAXPROCS=%d — speedups flatten once workers exceed cores\n\n", runtime.GOMAXPROCS(0))
	cfg.printf("%-8s %10s %10s %9s\n", "workers", "time", "GB/s", "speedup")

	baseline := 0.0
	for _, workers := range []int{1, 2, 4, 8} {
		opt := &btrblocks.Options{Parallelism: workers}
		best := 0.0
		for rep := 0; rep < cfg.reps(); rep++ {
			secs := timeSeconds(func() {
				for _, c := range chunks {
					if _, err := btrblocks.DecompressChunk(c.cc, opt); err != nil {
						panic(fmt.Sprintf("decompress %s: %v", c.name, err))
					}
				}
			})
			if best == 0 || secs < best {
				best = secs
			}
		}
		if workers == 1 {
			baseline = best
		}
		cfg.printf("%-8d %9.3fs %10.2f %8.2fx\n",
			workers, best, gbps(uncompressedBytes, best), baseline/best)
	}
	return nil
}
