package ingest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"btrblocks"
	"btrblocks/internal/obs"
)

// Invalidator receives the store-relative name of every file the service
// publishes, replaces, or removes, so a serving layer in front of the
// same directory can drop stale cached state. blockstore.Store satisfies
// it.
type Invalidator interface {
	Invalidate(name string)
}

// ContextInvalidator is an Invalidator that accepts the publishing
// request's context, so a remote invalidator (an HTTP client pushing to
// btrserved) can propagate the trace and request ID across the process
// boundary. The service type-asserts for it and falls back to
// Invalidate when it is not implemented.
type ContextInvalidator interface {
	InvalidateContext(ctx context.Context, name string)
}

// Config tunes a Service.
type Config struct {
	// Dir is the store directory column files are published into — the
	// same directory btrserved serves. Required.
	Dir string
	// WALDir holds the write-ahead log segments (default Dir/.wal; the
	// leading dot keeps it out of btrserved's way only by convention —
	// point it elsewhere to serve Dir over a store that lists dotfiles).
	WALDir string
	// ChunkRows is the buffered-row threshold that triggers a flush
	// (default 64000 — one full block).
	ChunkRows int
	// FlushInterval flushes all non-empty buffers on a timer so trickle
	// tables still publish (default 1s; negative disables the timer).
	FlushInterval time.Duration
	// TargetBlockRows is the block size compaction re-compresses to
	// (default 64000, where the cascade actually wins).
	TargetBlockRows int
	// CompactMinChunks is how many small level-0 chunks must accumulate
	// before the compactor merges them (default 4; negative disables
	// background compaction — CompactNow still works).
	CompactMinChunks int
	// CompactInterval is the background compactor's scan period
	// (default 5s; negative disables the timer — CompactNow still works).
	CompactInterval time.Duration
	// CompactMaxRows caps the rows merged per compaction run (default
	// 4 × TargetBlockRows).
	CompactMaxRows int
	// Options configures compression (parallelism, schemes, telemetry).
	// Ingest always writes checksummed (v2) files.
	Options *btrblocks.Options
	// Invalidator, when non-nil, is notified of every published,
	// replaced, or removed file.
	Invalidator Invalidator
	// Metrics receives counters and histograms (default: a private one,
	// readable via Service.Metrics).
	Metrics *Metrics
	// Logger receives structured logs (default: discard).
	Logger *slog.Logger
	// Spans, when non-nil, records spans for the ingest pipeline: WAL
	// append, group-commit sync, flush, cascade compression, atomic
	// publication, and invalidation all become children of whatever span
	// is in the caller's context (usually the HTTP handler's root span).
	Spans *obs.SpanRecorder
}

func (c *Config) chunkRows() int {
	if c.ChunkRows <= 0 {
		return btrblocks.DefaultBlockSize
	}
	return c.ChunkRows
}

func (c *Config) targetBlockRows() int {
	if c.TargetBlockRows <= 0 {
		return btrblocks.DefaultBlockSize
	}
	return c.TargetBlockRows
}

func (c *Config) compactMinChunks() int {
	if c.CompactMinChunks == 0 {
		return 4
	}
	return c.CompactMinChunks
}

func (c *Config) compactMaxRows() int {
	if c.CompactMaxRows > 0 {
		return c.CompactMaxRows
	}
	return 4 * c.targetBlockRows()
}

func (c *Config) flushInterval() time.Duration {
	if c.FlushInterval == 0 {
		return time.Second
	}
	return c.FlushInterval
}

func (c *Config) compactInterval() time.Duration {
	if c.CompactInterval == 0 {
		return 5 * time.Second
	}
	return c.CompactInterval
}

// chunkInfo is one committed chunk on disk.
type chunkInfo struct {
	Seq    uint64 // max WAL sequence covered
	MinSeq uint64 // min WAL sequence covered (== first record's seq)
	Level  int    // 0 = fresh flush, 1 = compacted
	Rows   int
	Bytes  int64
	Files  []string // column file names within the table dir, schema order
}

func (c *chunkInfo) base() string { return fmt.Sprintf("c-%016x-%d", c.Seq, c.Level) }

// chunkMarker is the commit marker written last during publication: a
// chunk exists iff its marker does. It also records the schema, so
// recovery needs no decoding.
type chunkMarker struct {
	Table   string         `json:"table"`
	Seq     uint64         `json:"seq"`
	MinSeq  uint64         `json:"min_seq"`
	Level   int            `json:"level"`
	Rows    int            `json:"rows"`
	Columns []markerColumn `json:"columns"`
}

type markerColumn struct {
	Name  string `json:"name"`
	Type  string `json:"type"`
	File  string `json:"file"`
	Bytes int64  `json:"bytes"`
}

// tableState is the in-memory state of one table: registered schema,
// the accumulating row buffer, and the committed chunks on disk.
type tableState struct {
	name       string
	schema     []btrblocks.Column
	buf        btrblocks.Chunk
	bufMinSeq  uint64 // lowest WAL seq in the buffer (0 when empty)
	bufMaxSeq  uint64 // highest WAL seq in the buffer
	flushedSeq uint64 // highest WAL seq published
	chunks     []chunkInfo

	// flushMu serializes flushes of this table (ticker vs HTTP vs
	// threshold) without blocking appends to other tables.
	flushMu sync.Mutex
}

func (ts *tableState) bufRows() int { return ts.buf.NumRows() }

// Service is the ingestion engine. Open recovers it from disk; Append
// is safe for concurrent use; Close flushes and shuts down.
type Service struct {
	cfg Config
	dir string
	opt *btrblocks.Options
	met *Metrics
	log *slog.Logger

	mu     sync.Mutex
	tables map[string]*tableState
	wal    *wal
	closed bool
	// publishing counts flushes whose buffer has been taken under mu but
	// whose chunk has not yet committed (or been restored after a publish
	// failure). The WAL checkpoint must not run while any publish is in
	// flight: the in-flight rows are no longer in a buffer, so allEmpty
	// alone would let a concurrent flush of another table prune the very
	// segments that still back them.
	publishing int

	flushCh chan flushRequest // threshold-triggered flush requests
	stop    chan struct{}
	wg      sync.WaitGroup
}

// flushRequest carries a threshold-triggered flush to the flusher loop
// together with the appending request's (uncancellable) context, so the
// asynchronous flush — compression, publication, invalidation — shows
// up in the same trace as the append that tripped the threshold.
type flushRequest struct {
	table string
	ctx   context.Context
}

// Open recovers the service from dir: committed chunks are indexed (and
// uncommitted garbage from a crashed publication removed), then the WAL
// is replayed — records already covered by a published chunk are
// skipped, the rest repopulate the row buffers, and a torn tail is
// discarded. A fresh WAL segment is opened for new appends.
func Open(cfg Config) (*Service, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ingest: Config.Dir is required")
	}
	if cfg.WALDir == "" {
		cfg.WALDir = filepath.Join(cfg.Dir, ".wal")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	met := cfg.Metrics
	if met == nil {
		met = NewMetrics()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Service{
		cfg:     cfg,
		dir:     cfg.Dir,
		opt:     cfg.Options,
		met:     met,
		log:     logger,
		tables:  make(map[string]*tableState),
		flushCh: make(chan flushRequest, 64),
		stop:    make(chan struct{}),
	}
	if err := s.recoverPublished(); err != nil {
		return nil, err
	}
	w, err := openWAL(cfg.WALDir, met, s.applyReplay)
	if err != nil {
		return nil, err
	}
	s.wal = w
	// Re-anchor the sequence counter past every published chunk. A
	// checkpoint prunes the log, so after a restart the WAL alone may
	// know nothing about sequence numbers already spent on published
	// chunks — and a reused number would make the next replay skip a
	// live record as "already published".
	maxSeen := uint64(0)
	for _, ts := range s.tables {
		if ts.flushedSeq > maxSeen {
			maxSeen = ts.flushedSeq
		}
		if ts.bufMaxSeq > maxSeen {
			maxSeen = ts.bufMaxSeq
		}
	}
	w.ensureSeqAfter(maxSeen)

	s.wg.Add(1)
	go s.flusherLoop()
	if cfg.compactMinChunks() > 0 && cfg.compactInterval() > 0 {
		s.wg.Add(1)
		go s.compactorLoop()
	}
	return s, nil
}

// Metrics returns the service's counters.
func (s *Service) Metrics() *Metrics { return s.met }

// Spans returns the service's span recorder (nil when disabled).
func (s *Service) Spans() *obs.SpanRecorder { return s.cfg.Spans }

// Dir returns the store directory the service publishes into.
func (s *Service) Dir() string { return s.dir }

// recoverPublished walks the store directory: committed chunks (those
// with a .commit marker) become tableState entries; tmp files and
// chunk files without a marker — a crash mid-publication — are removed;
// level-0 chunks whose sequence range a compacted chunk covers — a
// crash mid-compaction, after the output committed but before the
// inputs were removed — are removed too.
func (s *Service) recoverPublished() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() || !validName(e.Name()) {
			continue
		}
		if err := s.recoverTable(e.Name()); err != nil {
			return err
		}
	}
	return nil
}

func (s *Service) recoverTable(table string) error {
	tdir := filepath.Join(s.dir, table)
	entries, err := os.ReadDir(tdir)
	if err != nil {
		return err
	}
	committed := map[string]*chunkMarker{} // base -> marker
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(tdir, name))
			s.met.UncommittedDrop.Add(1)
			continue
		}
		if strings.HasSuffix(name, ".commit") {
			var m chunkMarker
			data, err := os.ReadFile(filepath.Join(tdir, name))
			if err != nil {
				return err
			}
			if err := json.Unmarshal(data, &m); err != nil {
				return fmt.Errorf("ingest: bad commit marker %s/%s: %v", table, name, err)
			}
			committed[strings.TrimSuffix(name, ".commit")] = &m
			continue
		}
		files = append(files, name)
	}
	// Chunk files without a marker never committed; remove them. Other
	// files (someone else's data in the same lake directory) are left
	// alone.
	for _, name := range files {
		if base, ok := chunkFileBase(name); ok {
			if _, ok := committed[base]; !ok {
				os.Remove(filepath.Join(tdir, name))
				s.met.UncommittedDrop.Add(1)
				s.invalidate(context.Background(), table+"/"+name)
			}
		}
	}
	if len(committed) == 0 {
		return nil
	}
	// Supersede: a compacted chunk covers every level-0 chunk whose seq
	// falls in its [MinSeq, Seq] range; survivors of a crash mid-cleanup
	// are duplicates and must go.
	var infos []chunkInfo
	for base, m := range committed {
		info := chunkInfo{Seq: m.Seq, MinSeq: m.MinSeq, Level: m.Level, Rows: m.Rows}
		if info.MinSeq == 0 {
			info.MinSeq = info.Seq
		}
		for _, c := range m.Columns {
			info.Files = append(info.Files, c.File)
			info.Bytes += c.Bytes
		}
		_ = base
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Seq < infos[j].Seq })
	keep := make([]chunkInfo, 0, len(infos))
	for _, info := range infos {
		superseded := false
		if info.Level == 0 {
			for _, other := range infos {
				if other.Level > 0 && other.MinSeq <= info.Seq && info.Seq <= other.Seq {
					superseded = true
					break
				}
			}
		}
		if superseded {
			s.log.Warn("removing superseded chunk left by interrupted compaction",
				"table", table, "chunk", info.base())
			s.met.SupersededChunks.Add(1)
			s.removeChunk(context.Background(), table, &info)
			continue
		}
		keep = append(keep, info)
	}
	if len(keep) == 0 {
		return nil
	}
	newest := committed[keep[len(keep)-1].base()]
	if newest == nil {
		return fmt.Errorf("ingest: %s: marker for %s vanished during recovery", table, keep[len(keep)-1].base())
	}
	schema := make([]btrblocks.Column, len(newest.Columns))
	for i, c := range newest.Columns {
		t, err := parseType(c.Type)
		if err != nil {
			return fmt.Errorf("ingest: %s: %v", table, err)
		}
		schema[i] = btrblocks.Column{Name: c.Name, Type: t}
	}
	ts := &tableState{
		name:       table,
		schema:     schema,
		buf:        emptyChunkFor(schema),
		flushedSeq: keep[len(keep)-1].Seq,
		chunks:     append([]chunkInfo(nil), keep...),
	}
	s.tables[table] = ts
	return nil
}

// chunkFileBase extracts the "c-<seq>-<level>" base of a chunk column
// file name, or reports that the name is not one of ours.
func chunkFileBase(name string) (string, bool) {
	if !strings.HasPrefix(name, "c-") || !strings.HasSuffix(name, ".btr") {
		return "", false
	}
	rest := strings.TrimPrefix(name, "c-")
	dash := strings.IndexByte(rest, '-')
	if dash != 16 {
		return "", false
	}
	dot := strings.IndexByte(rest[dash:], '.')
	if dot < 0 {
		return "", false
	}
	return "c-" + rest[:dash+dot], true
}

// applyReplay consumes one recovered WAL record during Open.
func (s *Service) applyReplay(rec *walRecord) error {
	ts := s.tables[rec.Table]
	if ts == nil {
		if !validName(rec.Table) {
			return fmt.Errorf("ingest: WAL record for invalid table %q", rec.Table)
		}
		ts = &tableState{
			name:   rec.Table,
			schema: schemaOf(&rec.Chunk),
			buf:    emptyChunkFor(schemaOf(&rec.Chunk)),
		}
		s.tables[rec.Table] = ts
	}
	if rec.Seq <= ts.flushedSeq {
		s.met.WALSkippedRecords.Add(1)
		return nil
	}
	if err := schemaMatches(ts.schema, &rec.Chunk); err != nil {
		return fmt.Errorf("ingest: WAL record %d for table %s: %v", rec.Seq, rec.Table, err)
	}
	if ts.bufRows() == 0 {
		ts.bufMinSeq = rec.Seq
	}
	appendChunk(&ts.buf, &rec.Chunk)
	ts.bufMaxSeq = rec.Seq
	s.met.WALReplayed.Add(1)
	s.met.WALReplayedRows.Add(int64(rec.Chunk.NumRows()))
	return nil
}

// CreateTable registers a table with an explicit schema. Creating an
// existing table with the same schema is a no-op; with a different one,
// an error.
func (s *Service) CreateTable(table string, specs []ColumnSpec) error {
	if !validName(table) {
		return fmt.Errorf("%w: table %q", ErrBadName, table)
	}
	if len(specs) == 0 {
		return fmt.Errorf("%w: table needs at least one column", ErrSchema)
	}
	schema := make([]btrblocks.Column, len(specs))
	for i, sp := range specs {
		if !validName(sp.Name) {
			return fmt.Errorf("%w: column %q", ErrBadName, sp.Name)
		}
		t, err := parseType(sp.Type)
		if err != nil {
			return err
		}
		schema[i] = btrblocks.Column{Name: sp.Name, Type: t}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("ingest: service is closed")
	}
	if ts := s.tables[table]; ts != nil {
		probe := emptyChunkFor(schema)
		if err := schemaMatches(ts.schema, &probe); err != nil {
			return err
		}
		return nil
	}
	s.tables[table] = &tableState{name: table, schema: schema, buf: emptyChunkFor(schema)}
	return nil
}

// Append ingests one batch for a table: the batch is framed into the
// WAL, fsynced (group commit), and buffered. When Append returns nil
// the rows are durable — a crash at any later moment cannot lose them.
// The returned seq is the batch's WAL sequence number.
//
// The first append to an unknown table registers the batch's schema as
// the table's schema.
func (s *Service) Append(table string, chunk *btrblocks.Chunk) (seq uint64, err error) {
	return s.AppendContext(context.Background(), table, chunk)
}

// AppendContext is Append with a caller context. When the context
// carries a span, the WAL framing and the group-commit fsync wait are
// recorded as children, and a threshold-triggered flush joins the same
// trace.
func (s *Service) AppendContext(ctx context.Context, table string, chunk *btrblocks.Chunk) (seq uint64, err error) {
	start := time.Now()
	defer func() {
		if err != nil {
			s.met.AppendErrors.Add(1)
		} else {
			s.met.Appends.Add(1)
			s.met.AppendedRows.Add(int64(chunk.NumRows()))
			s.met.AppendLatency.Observe(time.Since(start))
		}
	}()
	rows := chunk.NumRows()
	if rows == 0 {
		return 0, ErrEmptyBatch
	}
	if !validName(table) {
		return 0, fmt.Errorf("%w: table %q", ErrBadName, table)
	}
	for i := range chunk.Columns {
		if !validName(chunk.Columns[i].Name) {
			return 0, fmt.Errorf("%w: column %q", ErrBadName, chunk.Columns[i].Name)
		}
		if chunk.Columns[i].Len() != rows {
			return 0, fmt.Errorf("%w: ragged batch (column %q has %d rows, batch has %d)",
				ErrSchema, chunk.Columns[i].Name, chunk.Columns[i].Len(), rows)
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("ingest: service is closed")
	}
	ts := s.tables[table]
	if ts == nil {
		ts = &tableState{name: table, schema: schemaOf(chunk), buf: emptyChunkFor(schemaOf(chunk))}
		s.tables[table] = ts
	} else if err := schemaMatches(ts.schema, chunk); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	// WAL append and buffer insert happen under one lock so the buffer
	// holds records in sequence order — a flushed buffer is always a
	// contiguous range of the table's WAL records, which is what lets
	// replay skip by comparing against the published high-water mark.
	_, wsp := obs.StartChild(ctx, "wal.append")
	wsp.SetAttr("table", table)
	wsp.SetAttrInt("rows", int64(rows))
	seq, off, gen, werr := s.wal.append(table, chunk)
	wsp.SetError(werr)
	wsp.End()
	if werr != nil {
		s.mu.Unlock()
		return 0, werr
	}
	if ts.bufRows() == 0 {
		ts.bufMinSeq = seq
	}
	appendChunk(&ts.buf, chunk)
	ts.bufMaxSeq = seq
	needFlush := ts.bufRows() >= s.cfg.chunkRows()
	s.mu.Unlock()

	// wal.sync covers the whole group-commit protocol: the wait to become
	// (or ride on) the sync winner plus the fsync itself.
	syncStart := time.Now()
	_, ssp := obs.StartChild(ctx, "wal.sync")
	serr := s.wal.syncTo(off, gen)
	ssp.SetError(serr)
	ssp.End()
	if serr != nil {
		return 0, serr
	}
	s.met.WALSyncLatency.Observe(time.Since(syncStart))

	if needFlush {
		select {
		// WithoutCancel: the flush outlives the HTTP request whose context
		// this is; it must keep the trace linkage but not the cancellation.
		case s.flushCh <- flushRequest{table: table, ctx: context.WithoutCancel(ctx)}:
		default: // a flush is already queued; the flusher drains the backlog
		}
	}
	return seq, nil
}

// flusherLoop services threshold-triggered flush requests and the
// periodic flush timer.
func (s *Service) flusherLoop() {
	defer s.wg.Done()
	var tick <-chan time.Time
	if iv := s.cfg.flushInterval(); iv > 0 {
		t := time.NewTicker(iv)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.stop:
			return
		case req := <-s.flushCh:
			if err := s.FlushTableContext(req.ctx, req.table); err != nil {
				s.log.Error("flush", "table", req.table, "err", err.Error())
			}
		case <-tick:
			if err := s.FlushAll(); err != nil {
				s.log.Error("periodic flush", "err", err.Error())
			}
		}
	}
}

// FlushAll publishes every non-empty buffer.
func (s *Service) FlushAll() error {
	return s.FlushAllContext(context.Background())
}

// FlushAllContext is FlushAll with a caller context for tracing.
func (s *Service) FlushAllContext(ctx context.Context) error {
	s.mu.Lock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	var firstErr error
	for _, name := range names {
		if err := s.FlushTableContext(ctx, name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// FlushTable compresses and publishes the table's buffered rows as one
// chunk (one column file per schema column plus a commit marker). An
// empty buffer is a no-op. On publish failure the rows return to the
// buffer and the next flush retries.
func (s *Service) FlushTable(table string) error {
	return s.FlushTableContext(context.Background(), table)
}

// FlushTableContext is FlushTable with a caller context. When the
// context carries a span, the flush and everything under it — cascade
// compression, atomic publication, invalidation — are recorded as
// children.
func (s *Service) FlushTableContext(ctx context.Context, table string) (err error) {
	s.mu.Lock()
	ts := s.tables[table]
	s.mu.Unlock()
	if ts == nil {
		return fmt.Errorf("ingest: unknown table %q", table)
	}
	ctx, fsp := obs.StartChild(ctx, "ingest.flush")
	fsp.SetAttr("table", table)
	defer func() {
		fsp.SetError(err)
		fsp.End()
	}()
	ts.flushMu.Lock()
	defer ts.flushMu.Unlock()

	s.mu.Lock()
	rows := ts.bufRows()
	if rows == 0 {
		s.mu.Unlock()
		return nil
	}
	chunk := ts.buf
	minSeq, maxSeq := ts.bufMinSeq, ts.bufMaxSeq
	ts.buf = emptyChunkFor(ts.schema)
	ts.bufMinSeq, ts.bufMaxSeq = 0, 0
	s.publishing++
	s.mu.Unlock()

	fsp.SetAttrInt("rows", int64(rows))
	start := time.Now()
	info, err := s.publishChunk(ctx, table, &chunk, chunkInfo{Seq: maxSeq, MinSeq: minSeq, Level: 0, Rows: rows})
	if err != nil {
		// Put the rows back in front of whatever arrived meanwhile so the
		// buffer stays in sequence order.
		s.met.PublishErrors.Add(1)
		s.mu.Lock()
		arrived := ts.buf
		restored := emptyChunkFor(ts.schema)
		appendChunk(&restored, &chunk)
		appendChunk(&restored, &arrived)
		ts.buf = restored
		ts.bufMinSeq = minSeq
		if ts.bufMaxSeq == 0 {
			ts.bufMaxSeq = maxSeq
		}
		s.publishing--
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	ts.flushedSeq = maxSeq
	ts.chunks = append(ts.chunks, *info)
	s.publishing--
	allEmpty := true
	for _, other := range s.tables {
		if other.bufRows() > 0 {
			allEmpty = false
			break
		}
	}
	// Checkpoint: once every acknowledged row is published, the old WAL
	// segments carry nothing new — rotate and prune them so the log does
	// not grow without bound. The checkpoint must happen under s.mu:
	// appends write their WAL record under the same lock, so no record
	// can land in a segment between the allEmpty check and the prune.
	// Another table's publish may have taken its buffer (emptying it)
	// without committing yet — its rows exist only in the WAL, so also
	// require that no other publish is in flight.
	if allEmpty && s.publishing == 0 && s.wal.size() > int64(walHeaderLen) {
		if err := s.wal.checkpoint(); err != nil {
			s.log.Warn("wal checkpoint", "err", err.Error())
		}
	}
	s.mu.Unlock()

	s.met.Flushes.Add(1)
	s.met.FlushedRows.Add(int64(rows))
	s.met.FlushLatency.Observe(time.Since(start))
	s.log.Info("published chunk", "table", table, "chunk", info.base(),
		"rows", rows, "bytes", info.Bytes, "seq", maxSeq)
	return nil
}

// publishChunk compresses each column and publishes the chunk
// atomically: every column file is written to a temp name, fsynced and
// renamed; the commit marker goes last. A crash anywhere in between
// leaves either an invisible chunk (no marker — startup removes the
// fragments and the WAL re-publishes) or a complete one.
func (s *Service) publishChunk(ctx context.Context, table string, chunk *btrblocks.Chunk, proto chunkInfo) (*chunkInfo, error) {
	tdir := filepath.Join(s.dir, table)
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return nil, err
	}
	info := proto
	base := info.base()
	marker := chunkMarker{
		Table:  table,
		Seq:    info.Seq,
		MinSeq: info.MinSeq,
		Level:  info.Level,
		Rows:   info.Rows,
	}
	for i := range chunk.Columns {
		col := &chunk.Columns[i]
		cctx, csp := obs.StartChild(ctx, "compress.cascade")
		csp.SetAttr("column", col.Name)
		csp.SetAttrInt("rows", int64(col.Len()))
		data, err := btrblocks.CompressColumnContext(cctx, *col, s.compressOptions(info.Level))
		csp.SetError(err)
		if err == nil {
			csp.SetAttrInt("bytes", int64(len(data)))
		}
		csp.End()
		if err != nil {
			return nil, fmt.Errorf("compress %s/%s: %w", table, col.Name, err)
		}
		name := fmt.Sprintf("%s.%s.btr", base, col.Name)
		_, psp := obs.StartChild(ctx, "publish.atomic")
		psp.SetAttr("file", table+"/"+name)
		psp.SetAttrInt("bytes", int64(len(data)))
		werr := writeFileAtomic(filepath.Join(tdir, name), data)
		psp.SetError(werr)
		psp.End()
		if werr != nil {
			return nil, werr
		}
		info.Files = append(info.Files, name)
		info.Bytes += int64(len(data))
		marker.Columns = append(marker.Columns, markerColumn{
			Name: col.Name, Type: typeName(col.Type), File: name, Bytes: int64(len(data)),
		})
		s.met.PublishedFiles.Add(1)
		s.met.PublishedBytes.Add(int64(len(data)))
		s.invalidate(ctx, table+"/"+name)
	}
	mdata, err := json.MarshalIndent(&marker, "", "  ")
	if err != nil {
		return nil, err
	}
	_, msp := obs.StartChild(ctx, "publish.atomic")
	msp.SetAttr("file", table+"/"+base+".commit")
	msp.SetAttrInt("bytes", int64(len(mdata)))
	err = writeFileAtomic(filepath.Join(tdir, base+".commit"), mdata)
	msp.SetError(err)
	msp.End()
	if err != nil {
		return nil, err
	}
	s.invalidate(ctx, table+"/"+base+".commit")
	return &info, nil
}

// compressOptions clones the configured options with the block size the
// chunk level calls for: level-0 chunks keep the default (a small flush
// is one small block), compacted chunks use the full target block size.
func (s *Service) compressOptions(level int) *btrblocks.Options {
	var opt btrblocks.Options
	if s.opt != nil {
		opt = *s.opt
	}
	if level > 0 || opt.BlockSize <= 0 {
		opt.BlockSize = s.cfg.targetBlockRows()
	}
	return &opt
}

// removeChunk deletes a chunk from disk, marker first: the moment the
// marker is gone the chunk no longer exists as far as recovery is
// concerned, so leftover column files are mere garbage, not data.
func (s *Service) removeChunk(ctx context.Context, table string, info *chunkInfo) {
	tdir := filepath.Join(s.dir, table)
	os.Remove(filepath.Join(tdir, info.base()+".commit"))
	s.invalidate(ctx, table+"/"+info.base()+".commit")
	for _, f := range info.Files {
		os.Remove(filepath.Join(tdir, f))
		s.invalidate(ctx, table+"/"+f)
	}
	syncDir(tdir)
}

func (s *Service) invalidate(ctx context.Context, name string) {
	if s.cfg.Invalidator == nil {
		return
	}
	ictx, sp := obs.StartChild(ctx, "invalidate")
	sp.SetAttr("file", name)
	if ci, ok := s.cfg.Invalidator.(ContextInvalidator); ok {
		ci.InvalidateContext(ictx, name)
	} else {
		s.cfg.Invalidator.Invalidate(name)
	}
	sp.End()
	s.met.Invalidations.Add(1)
}

// writeFileAtomic writes data to path via a temp file in the same
// directory: write, fsync, rename, fsync dir. Readers never observe a
// partial file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// TableStats is the externally visible state of one table.
type TableStats struct {
	Table          string       `json:"table"`
	Columns        []ColumnSpec `json:"columns"`
	BufferedRows   int          `json:"buffered_rows"`
	FlushedSeq     uint64       `json:"flushed_seq"`
	Chunks         int          `json:"chunks"`
	CompactedChunk int          `json:"compacted_chunks"`
	PublishedRows  int          `json:"published_rows"`
	PublishedBytes int64        `json:"published_bytes"`
}

// Stats returns per-table state sorted by table name.
func (s *Service) Stats() []TableStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TableStats, 0, len(s.tables))
	for _, ts := range s.tables {
		st := TableStats{
			Table:        ts.name,
			BufferedRows: ts.bufRows(),
			FlushedSeq:   ts.flushedSeq,
			Chunks:       len(ts.chunks),
		}
		for i := range ts.schema {
			st.Columns = append(st.Columns, ColumnSpec{
				Name: ts.schema[i].Name, Type: typeName(ts.schema[i].Type),
			})
		}
		for i := range ts.chunks {
			st.PublishedRows += ts.chunks[i].Rows
			st.PublishedBytes += ts.chunks[i].Bytes
			if ts.chunks[i].Level > 0 {
				st.CompactedChunk++
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// Close flushes every buffer, stops the background loops, and closes
// the WAL. Idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	err := s.FlushAll()
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	return err
}

// crash abandons the service without flushing buffers or syncing the
// WAL — the in-process stand-in for kill -9, used by the chaos tests.
// Acknowledged appends are already durable; everything else is lost,
// exactly as a real crash would lose it.
func (s *Service) crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	s.wal.crash()
}

// walkStore lists the store-relative paths of every committed column
// file, for tests and the verify walkthrough.
func (s *Service) walkStore() ([]string, error) {
	var out []string
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && d.Name() == filepath.Base(s.cfg.WALDir) && filepath.Dir(path) == s.dir {
			return filepath.SkipDir
		}
		if d.Type().IsRegular() && strings.HasSuffix(path, ".btr") {
			rel, err := filepath.Rel(s.dir, path)
			if err != nil {
				return err
			}
			out = append(out, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// errUnknownTable helps the HTTP layer map missing tables to 404.
func isUnknownTable(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown table")
}

var _ = errors.Is // keep errors imported for the sentinel helpers
