package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"btrblocks"
)

// seqIntChunk builds a chunk of n sequential int64s starting at base.
func seqIntChunk(base int64, n int) *btrblocks.Chunk {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = base + int64(i)
	}
	return testChunk(vals...)
}

// dictChunk builds a chunk of n rows drawn from a 100-value string
// dictionary plus a row id — the workload where block size decides the
// ratio: every small block pays for its own dictionary, a full block
// amortizes one across all rows.
func dictChunk(base int64, n int) *btrblocks.Chunk {
	ids := make([]int64, n)
	var s btrblocks.Column
	s.Name, s.Type = "s", btrblocks.TypeString
	for i := 0; i < n; i++ {
		ids[i] = base + int64(i)
		v := (base + int64(i)) * 2654435761 % 100
		s.Strings = s.Strings.Append(fmt.Sprintf("customer-segment-%02d-padding-padding", v))
	}
	return &btrblocks.Chunk{Columns: []btrblocks.Column{
		{Name: "id", Type: btrblocks.TypeInt64, Ints64: ids},
		s,
	}}
}

func TestPickCompaction(t *testing.T) {
	small := func(seq uint64) chunkInfo {
		return chunkInfo{Seq: seq, MinSeq: seq, Level: 0, Rows: 100}
	}
	full := func(seq uint64) chunkInfo {
		return chunkInfo{Seq: seq, MinSeq: seq, Level: 0, Rows: 64000}
	}
	l1 := func(seq uint64) chunkInfo {
		return chunkInfo{Seq: seq, MinSeq: 1, Level: 1, Rows: 5000}
	}
	cases := []struct {
		name   string
		chunks []chunkInfo
		want   []uint64 // seqs of the selected run
	}{
		{"empty", nil, nil},
		{"below min", []chunkInfo{small(1)}, nil},
		{"simple run", []chunkInfo{small(1), small(2), small(3)}, []uint64{1, 2, 3}},
		{"full chunk breaks run", []chunkInfo{small(1), full(2), small(3), small(4)}, []uint64{3, 4}},
		{"level1 breaks run", []chunkInfo{l1(5), small(6), small(7)}, []uint64{6, 7}},
		{"oldest run wins", []chunkInfo{small(1), small(2), full(3), small(4), small(5), small(6)}, []uint64{1, 2}},
		{"short head run skipped", []chunkInfo{small(1), full(2), small(3), small(4)}, []uint64{3, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := pickCompaction(tc.chunks, 2, 64000, 256000)
			var seqs []uint64
			for _, c := range got {
				seqs = append(seqs, c.Seq)
			}
			if fmt.Sprint(seqs) != fmt.Sprint(tc.want) {
				t.Fatalf("picked %v, want %v", seqs, tc.want)
			}
		})
	}

	// Row cap truncates the run but never below 2 chunks.
	run := []chunkInfo{small(1), small(2), small(3), small(4)}
	got := pickCompaction(run, 2, 64000, 250)
	if len(got) != 2 {
		t.Fatalf("row-capped run has %d chunks, want 2", len(got))
	}
	// ...and never below a larger configured minimum: with minChunks=4 a
	// budget that would truncate at 2 keeps the whole minimum-length run.
	got = pickCompaction(run, 4, 64000, 250)
	if len(got) != 4 {
		t.Fatalf("row-capped run with minChunks=4 has %d chunks, want 4", len(got))
	}
}

// TestCompactionImprovesRatioAndPreservesRows is the core compactor
// property: merging many small published chunks into one level-1 chunk
// (a) keeps the row multiset identical and (b) shrinks the bytes,
// because the cascade finally sees full blocks.
func TestCompactionImprovesRatioAndPreservesRows(t *testing.T) {
	dir := t.TempDir()
	cfg := quietConfig(dir)
	cfg.CompactMinChunks = 2
	cfg.CompactInterval = -1
	cfg.TargetBlockRows = 64000
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// 16 small flushes of 500 dictionary-heavy rows each.
	const flushes, rowsPer = 16, 500
	for i := 0; i < flushes; i++ {
		if _, err := svc.Append("t", dictChunk(int64(i*rowsPer), rowsPer)); err != nil {
			t.Fatal(err)
		}
		if err := svc.FlushTable("t"); err != nil {
			t.Fatal(err)
		}
	}
	before := tableValues(t, dir, "t")
	bytesBefore := storeBytes(t, dir, "t")

	if err := svc.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if len(st) != 1 || st[0].Chunks != 1 {
		t.Fatalf("stats after compaction = %+v, want a single chunk", st)
	}
	diffMultiset(t, before, tableValues(t, dir, "t"))

	bytesAfter := storeBytes(t, dir, "t")
	if bytesAfter >= bytesBefore {
		t.Fatalf("compaction did not shrink the store: %d -> %d bytes", bytesBefore, bytesAfter)
	}
	m := svc.Metrics()
	if m.Compactions.Load() == 0 || m.CompactionBytesBefore.Load() <= m.CompactionBytesAfter.Load() {
		t.Fatalf("compaction metrics: n=%d before=%d after=%d",
			m.Compactions.Load(), m.CompactionBytesBefore.Load(), m.CompactionBytesAfter.Load())
	}
	t.Logf("compaction: %d -> %d bytes (%.2fx)", bytesBefore, bytesAfter,
		float64(bytesBefore)/float64(bytesAfter))
}

// storeBytes sums the column-file bytes of a table's committed chunks.
func storeBytes(t *testing.T, dir, table string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(filepath.Join(dir, table))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".btr") {
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
		}
	}
	return total
}

// TestCompactionSupersedeRecovery models a crash between the level-1
// commit and the removal of its inputs: both are on disk at startup.
// Recovery must drop the inputs (their sequence range is covered) and
// keep the merged chunk, with no row doubled.
func TestCompactionSupersedeRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := quietConfig(dir)
	cfg.CompactMinChunks = 2
	cfg.CompactInterval = -1
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := svc.Append("t", seqIntChunk(int64(i*10), 10)); err != nil {
			t.Fatal(err)
		}
		if err := svc.FlushTable("t"); err != nil {
			t.Fatal(err)
		}
	}
	want := tableValues(t, dir, "t")

	// Snapshot the level-0 files, compact, then restore them alongside
	// the level-1 output — exactly the on-disk state of a crash after
	// output-commit but before input removal.
	tdir := filepath.Join(dir, "t")
	saved := map[string][]byte{}
	entries, err := os.ReadDir(tdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(tdir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		saved[e.Name()] = data
	}
	if err := svc.CompactNow(); err != nil {
		t.Fatal(err)
	}
	svc.crash()
	for name, data := range saved {
		if err := os.WriteFile(filepath.Join(tdir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	svc2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Metrics().SupersededChunks.Load(); got != 4 {
		t.Errorf("superseded chunks = %d, want 4", got)
	}
	diffMultiset(t, want, tableValues(t, dir, "t"))
	st := svc2.Stats()
	if len(st) != 1 || st[0].Chunks != 1 {
		t.Fatalf("post-recovery stats = %+v, want the single level-1 chunk", st)
	}
}
