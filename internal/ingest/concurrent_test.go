package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"btrblocks"
)

// TestConcurrentHTTPAppends drives N goroutines × M batches through the
// HTTP endpoint and asserts the published chunks decode to exactly the
// acked row multiset — no loss, no duplication, no cross-batch bleed —
// at compressor Parallelism 1 and GOMAXPROCS.
func TestConcurrentHTTPAppends(t *testing.T) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("parallelism=%d", workers), func(t *testing.T) {
			testConcurrentAppends(t, workers)
		})
	}
}

func testConcurrentAppends(t *testing.T, workers int) {
	dir := t.TempDir()
	cfg := Config{
		Dir:              dir,
		ChunkRows:        512, // force plenty of threshold flushes mid-storm
		FlushInterval:    -1,
		CompactMinChunks: 3,
		CompactInterval:  -1, // compaction driven explicitly below
		Options:          &btrblocks.Options{Parallelism: workers},
	}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.CreateTable("storm", []ColumnSpec{
		{Name: "v", Type: "int64"},
		{Name: "who", Type: "string"},
	}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	const (
		goroutines = 8
		batches    = 30
		batchRows  = 7
	)
	var (
		mu    sync.Mutex
		acked = map[string]int{}
		wg    sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				req := jsonAppendRequest{Table: "storm"}
				keys := make([]string, 0, batchRows)
				for r := 0; r < batchRows; r++ {
					v := int64(g*1_000_000 + b*1_000 + r)
					who := fmt.Sprintf("g%d", g)
					req.Rows = append(req.Rows, map[string]json.RawMessage{
						"v":   json.RawMessage(fmt.Sprint(v)),
						"who": json.RawMessage(fmt.Sprintf("%q", who)),
					})
					keys = append(keys, fmt.Sprintf("%d|%s", v, who))
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(srv.URL+"/v1/append", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("g%d b%d: %v", g, b, err)
					return
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("g%d b%d: status %d: %s", g, b, resp.StatusCode, out)
					return
				}
				var res appendResult
				if err := json.Unmarshal(out, &res); err != nil || res.Rows != batchRows {
					t.Errorf("g%d b%d: bad response %s", g, b, out)
					return
				}
				mu.Lock()
				for _, k := range keys {
					acked[k]++
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if err := svc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Compact, then check again: compaction must preserve the multiset too.
	diffMultiset(t, acked, tableValues(t, dir, "storm"))
	if err := svc.CompactNow(); err != nil {
		t.Fatal(err)
	}
	diffMultiset(t, acked, tableValues(t, dir, "storm"))

	wantRows := goroutines * batches * batchRows
	total := 0
	for _, n := range tableValues(t, dir, "storm") {
		total += n
	}
	if total != wantRows {
		t.Fatalf("published %d rows, acked %d", total, wantRows)
	}
}

// TestConcurrentSchemaInference hammers a fresh table from many
// goroutines at once: exactly one schema wins and every acked batch
// either matches it or was rejected with a schema error — never
// silently coerced.
func TestConcurrentSchemaInference(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	var (
		mu    sync.Mutex
		acked = map[string]int{}
		wg    sync.WaitGroup
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"table":"fresh","rows":[{"v":%d}]}`, g)
			resp, err := http.Post(srv.URL+"/v1/append", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				mu.Lock()
				acked[fmt.Sprint(g)]++
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if err := svc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	diffMultiset(t, acked, tableValues(t, dir, "fresh"))
}
