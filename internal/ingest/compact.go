package ingest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"btrblocks"
)

// The compactor turns accumulations of small level-0 chunks into full
// target-size blocks. BtrBlocks picks schemes by sampling a whole block,
// so a 500-row flush compresses into one 500-row block whose cascade
// never sees enough data to win; merging eight of them into a 64k-value
// block restores the ratio the format was designed for.
//
// Crash safety mirrors publication: the merged chunk commits (marker
// last) before any input is removed, and its marker records the
// [MinSeq, Seq] range it covers — recovery deletes any committed
// level-0 chunk inside a compacted chunk's range, so a crash between
// output-commit and input-removal never doubles rows.

// compactorLoop periodically compacts every table until no candidate
// run remains.
func (s *Service) compactorLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.compactInterval())
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.CompactNow(); err != nil {
				s.log.Error("compact", "err", err.Error())
			}
		}
	}
}

// CompactNow compacts every table until no candidate run remains.
func (s *Service) CompactNow() error {
	s.mu.Lock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	var firstErr error
	for _, name := range names {
		for {
			did, err := s.CompactTable(name)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			if !did {
				break
			}
		}
	}
	return firstErr
}

// CompactTable merges the oldest run of small level-0 chunks of one
// table into a single level-1 chunk and reports whether it did any
// work. A run is a consecutive (by sequence) stretch of committed
// level-0 chunks each smaller than the target block size; it must hold
// at least CompactMinChunks chunks to be worth the rewrite, and is
// capped at CompactMaxRows rows per pass.
func (s *Service) CompactTable(table string) (bool, error) {
	s.mu.Lock()
	ts := s.tables[table]
	s.mu.Unlock()
	if ts == nil {
		return false, fmt.Errorf("ingest: unknown table %q", table)
	}
	// flushMu keeps compaction runs of the same table from racing each
	// other; appending flushes are safe concurrently (they only grow
	// ts.chunks past the run under s.mu).
	ts.flushMu.Lock()
	defer ts.flushMu.Unlock()

	s.mu.Lock()
	inputs := pickCompaction(ts.chunks, s.cfg.compactMinChunks(), s.cfg.targetBlockRows(), s.cfg.compactMaxRows())
	schema := ts.schema
	s.mu.Unlock()
	if len(inputs) == 0 {
		return false, nil
	}

	start := time.Now()
	merged := emptyChunkFor(schema)
	var bytesBefore int64
	rows := 0
	for i := range inputs {
		chunk, err := s.readChunk(table, schema, &inputs[i])
		if err != nil {
			return false, fmt.Errorf("compact %s/%s: %w", table, inputs[i].base(), err)
		}
		appendChunk(&merged, &chunk)
		bytesBefore += inputs[i].Bytes
		rows += inputs[i].Rows
	}
	if merged.NumRows() != rows {
		return false, fmt.Errorf("compact %s: inputs decode to %d rows, markers say %d",
			table, merged.NumRows(), rows)
	}

	out, err := s.publishChunk(context.Background(), table, &merged, chunkInfo{
		Seq:    inputs[len(inputs)-1].Seq,
		MinSeq: inputs[0].MinSeq,
		Level:  1,
		Rows:   rows,
	})
	if err != nil {
		s.met.PublishErrors.Add(1)
		return false, err
	}

	s.mu.Lock()
	kept := ts.chunks[:0]
	for _, c := range ts.chunks {
		consumed := false
		for i := range inputs {
			if c.Seq == inputs[i].Seq && c.Level == inputs[i].Level {
				consumed = true
				break
			}
		}
		if !consumed {
			kept = append(kept, c)
		}
	}
	kept = append(kept, *out)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Seq < kept[j].Seq })
	ts.chunks = kept
	s.mu.Unlock()

	// The output is committed; the inputs are now redundant copies.
	for i := range inputs {
		s.removeChunk(context.Background(), table, &inputs[i])
	}

	s.met.Compactions.Add(1)
	s.met.CompactedChunks.Add(int64(len(inputs)))
	s.met.CompactedRows.Add(int64(rows))
	s.met.CompactionBytesBefore.Add(bytesBefore)
	s.met.CompactionBytesAfter.Add(out.Bytes)
	s.met.CompactLatency.Observe(time.Since(start))
	s.log.Info("compacted", "table", table, "chunks", len(inputs), "rows", rows,
		"bytes_before", bytesBefore, "bytes_after", out.Bytes, "out", out.base())
	return true, nil
}

// pickCompaction selects the oldest consecutive run of small level-0
// chunks. Level-1 chunks and full-size level-0 chunks break runs — a
// chunk flushed at the 64k threshold is already a full block and gains
// nothing from a rewrite.
func pickCompaction(chunks []chunkInfo, minChunks, targetRows, maxRows int) []chunkInfo {
	if minChunks < 2 {
		minChunks = 2
	}
	var run []chunkInfo
	for i := range chunks {
		c := chunks[i]
		if c.Level != 0 || c.Rows >= targetRows {
			if len(run) >= minChunks {
				break
			}
			run = run[:0]
			continue
		}
		run = append(run, c)
	}
	if len(run) < minChunks {
		return nil
	}
	// Cap the pass: keep the oldest prefix whose rows fit the budget,
	// but never truncate below the configured minimum run length.
	total := 0
	for i := range run {
		if total+run[i].Rows > maxRows && i >= minChunks {
			return run[:i]
		}
		total += run[i].Rows
	}
	return run
}

// readChunk loads and decompresses one committed chunk back into rows.
func (s *Service) readChunk(table string, schema []btrblocks.Column, info *chunkInfo) (btrblocks.Chunk, error) {
	var chunk btrblocks.Chunk
	if len(info.Files) != len(schema) {
		return chunk, fmt.Errorf("chunk has %d files, schema has %d columns", len(info.Files), len(schema))
	}
	tdir := filepath.Join(s.dir, table)
	chunk.Columns = make([]btrblocks.Column, len(schema))
	for i, name := range info.Files {
		data, err := os.ReadFile(filepath.Join(tdir, name))
		if err != nil {
			return chunk, err
		}
		col, err := btrblocks.DecompressColumn(data, s.compressOptions(info.Level))
		if err != nil {
			return chunk, fmt.Errorf("%s: %w", name, err)
		}
		col.Name = schema[i].Name
		if col.Type != schema[i].Type {
			return chunk, fmt.Errorf("%s: decodes to %v, schema says %v", name, col.Type, schema[i].Type)
		}
		chunk.Columns[i] = col
	}
	rows := chunk.NumRows()
	for i := range chunk.Columns {
		if chunk.Columns[i].Len() != rows {
			return chunk, fmt.Errorf("ragged chunk: column %s has %d rows, chunk has %d",
				chunk.Columns[i].Name, chunk.Columns[i].Len(), rows)
		}
	}
	return chunk, nil
}
