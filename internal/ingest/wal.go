// Package ingest is the write path of the repository: a crash-safe,
// high-throughput ingestion service that accepts concurrent row appends
// over HTTP, stages them in per-table buffers, and publishes them as
// BtrBlocks column files into the same directory btrserved serves.
//
// Durability comes from a write-ahead log: an append is acknowledged
// only after its length-prefixed, CRC32C-framed record is fsynced
// (group commit coalesces concurrent syncs into one fsync). Startup
// replays the WAL to recover every acknowledged row that was not yet
// published; torn or truncated tails — the signature of a crash mid
// write — are detected by the framing and cleanly discarded.
//
// Publication is atomic (write temp + fsync + rename + fsync dir) and
// per chunk: each flush emits one column file per schema column plus a
// commit marker written last, so a crash mid-publish leaves only
// uncommitted garbage that startup removes and the WAL re-publishes. A
// background compactor re-compresses accumulations of small chunks into
// full 64k-value blocks, where the cascade actually wins, and reports
// bytes before/after through the package metrics.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"btrblocks"
)

// WAL on-disk format (FORMAT.md §2.6):
//
//	walfile := "BTRW" version:u8 record*
//	record  := 'R' payloadLen:u32 payloadCRC:u32 payload[payloadLen]
//
// payloadCRC is the CRC32C (Castagnoli) of the payload bytes. A record
// is valid only if its full payload is present and matches the CRC;
// replay stops at the first invalid frame and discards the tail.

const (
	walMagic   = "BTRW"
	walVersion = 1
	walRecTag  = 'R'
	// walHeaderLen is the segment header: magic + version byte.
	walHeaderLen = len(walMagic) + 1
	// walFrameLen is the per-record frame overhead: tag + length + CRC.
	walFrameLen = 1 + 4 + 4
	// walMaxPayload bounds a single record so a corrupt length field
	// cannot trigger a giant allocation during replay.
	walMaxPayload = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one replayed WAL record: a batch of rows for one table.
type walRecord struct {
	Seq   uint64
	Table string
	Chunk btrblocks.Chunk
}

// encodeWALPayload serializes one append: sequence number, table name,
// schema, and the columnar row data. Records are self-contained — the
// schema rides along — so replay needs no external state.
//
//	payload := seq:u64 tableLen:u16 table colCount:u16 column* rowCount:u32 coldata*
//	column  := type:u8 nameLen:u16 name
//	coldata := nullCount:u32 nullPos:u32* values   (per column, schema order)
//
// Values: int32/int64/float64 are little-endian fixed width; strings are
// len:u32 + bytes per row. NULL slots store whatever value the slot
// holds (typically the zero value); the NULL positions are authoritative.
func encodeWALPayload(seq uint64, table string, chunk *btrblocks.Chunk) []byte {
	out := make([]byte, 0, 64+chunk.UncompressedBytes())
	out = binary.LittleEndian.AppendUint64(out, seq)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(table)))
	out = append(out, table...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(chunk.Columns)))
	for i := range chunk.Columns {
		col := &chunk.Columns[i]
		out = append(out, byte(col.Type))
		out = binary.LittleEndian.AppendUint16(out, uint16(len(col.Name)))
		out = append(out, col.Name...)
	}
	rows := chunk.NumRows()
	out = binary.LittleEndian.AppendUint32(out, uint32(rows))
	for i := range chunk.Columns {
		col := &chunk.Columns[i]
		var nulls []uint32
		col.Nulls.ForEachNull(func(p int) bool {
			nulls = append(nulls, uint32(p))
			return true
		})
		out = binary.LittleEndian.AppendUint32(out, uint32(len(nulls)))
		for _, p := range nulls {
			out = binary.LittleEndian.AppendUint32(out, p)
		}
		switch col.Type {
		case btrblocks.TypeInt:
			for _, v := range col.Ints {
				out = binary.LittleEndian.AppendUint32(out, uint32(v))
			}
		case btrblocks.TypeInt64:
			for _, v := range col.Ints64 {
				out = binary.LittleEndian.AppendUint64(out, uint64(v))
			}
		case btrblocks.TypeDouble:
			for _, v := range col.Doubles {
				out = binary.LittleEndian.AppendUint64(out, floatBits(v))
			}
		case btrblocks.TypeString:
			for r := 0; r < rows; r++ {
				v := col.Strings.View(r)
				out = binary.LittleEndian.AppendUint32(out, uint32(len(v)))
				out = append(out, v...)
			}
		}
	}
	return out
}

// errWALPayload marks a structurally invalid record payload.
var errWALPayload = fmt.Errorf("ingest: invalid WAL record payload")

// decodeWALPayload is the inverse of encodeWALPayload. Any structural
// violation returns errWALPayload; the caller treats it like a torn
// tail (the CRC makes this effectively unreachable except for records
// written by a newer, incompatible encoder).
func decodeWALPayload(p []byte) (*walRecord, error) {
	r := byteReader{buf: p}
	seq := r.u64()
	table := string(r.take(int(r.u16())))
	ncols := int(r.u16())
	if r.bad || ncols > 4096 {
		return nil, errWALPayload
	}
	rec := &walRecord{Seq: seq, Table: table}
	rec.Chunk.Columns = make([]btrblocks.Column, ncols)
	for i := range rec.Chunk.Columns {
		t := btrblocks.Type(r.u8())
		name := string(r.take(int(r.u16())))
		if r.bad || t > btrblocks.TypeInt64 {
			return nil, errWALPayload
		}
		rec.Chunk.Columns[i].Type = t
		rec.Chunk.Columns[i].Name = name
	}
	rows := int(r.u32())
	if r.bad || rows > walMaxPayload {
		return nil, errWALPayload
	}
	for i := range rec.Chunk.Columns {
		col := &rec.Chunk.Columns[i]
		nNulls := int(r.u32())
		if r.bad || nNulls > rows {
			return nil, errWALPayload
		}
		var mask *btrblocks.NullMask
		for j := 0; j < nNulls; j++ {
			pos := int(r.u32())
			if r.bad || pos >= rows {
				return nil, errWALPayload
			}
			if mask == nil {
				mask = btrblocks.NewNullMask()
			}
			mask.SetNull(pos)
		}
		col.Nulls = mask
		switch col.Type {
		case btrblocks.TypeInt:
			col.Ints = make([]int32, rows)
			for j := range col.Ints {
				col.Ints[j] = int32(r.u32())
			}
		case btrblocks.TypeInt64:
			col.Ints64 = make([]int64, rows)
			for j := range col.Ints64 {
				col.Ints64[j] = int64(r.u64())
			}
		case btrblocks.TypeDouble:
			col.Doubles = make([]float64, rows)
			for j := range col.Doubles {
				col.Doubles[j] = floatFromBits(r.u64())
			}
		case btrblocks.TypeString:
			for j := 0; j < rows; j++ {
				col.Strings = col.Strings.AppendBytes(r.take(int(r.u32())))
			}
		}
		if r.bad {
			return nil, errWALPayload
		}
	}
	return rec, nil
}

// byteReader is a tiny cursor with sticky failure for payload decoding.
type byteReader struct {
	buf []byte
	off int
	bad bool
}

func (r *byteReader) take(n int) []byte {
	if r.bad || n < 0 || r.off+n > len(r.buf) {
		r.bad = true
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// wal is the write-ahead log: a directory of numbered segment files, one
// of which is active. Appends go to the active segment through a
// buffered writer; Sync implements group commit — one fsync covers every
// append that completed before it, and concurrent callers coalesce on
// the sync mutex.
type wal struct {
	dir string
	met *Metrics

	// mu guards the append path: file handle, buffered offsets, the
	// sequence counter, and segment rotation.
	mu      sync.Mutex
	f       *os.File
	segNum  uint64
	written int64 // logical bytes appended to the active segment
	nextSeq uint64
	broken  error // sticky write failure: the segment tail is suspect

	// syncMu serializes fsyncs; synced is the group-commit high-water
	// mark (bytes of the active segment known durable).
	syncMu sync.Mutex
	synced int64
	segGen uint64 // bumped on rotation so stale sync targets don't match
}

func walSegmentName(n uint64) string { return fmt.Sprintf("%08d.wal", n) }

// openWAL replays every segment under dir in order (calling apply for
// each valid record), then opens a fresh active segment numbered past
// the existing ones. Torn tails are counted and discarded; only the
// replayed records before the tear are recovered, which is exactly the
// acknowledged prefix.
func openWAL(dir string, met *Metrics, apply func(*walRecord) error) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "%08d.wal", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	w := &wal{dir: dir, met: met, nextSeq: 1}
	for _, n := range segs {
		if err := w.replaySegment(filepath.Join(dir, walSegmentName(n)), apply); err != nil {
			return nil, err
		}
		if n >= w.segNum {
			w.segNum = n
		}
	}
	w.segNum++
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	return w, nil
}

// replaySegment walks one segment's records. Framing violations — short
// header, short frame, short payload, CRC mismatch — end the walk: they
// are the torn tail of a crashed writer, and everything after them is
// unacknowledged by construction (acks happen only after fsync).
func (w *wal) replaySegment(path string, apply func(*walRecord) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	discard := func(off int) {
		if w.met != nil && off < len(data) {
			w.met.WALDiscardedTails.Add(1)
			w.met.WALDiscardedBytes.Add(int64(len(data) - off))
		}
	}
	if len(data) < walHeaderLen || string(data[:4]) != walMagic || data[4] != walVersion {
		// A segment too short to hold its header is a crash during
		// creation; nothing in it was ever acknowledged.
		discard(0)
		return nil
	}
	off := walHeaderLen
	for off < len(data) {
		if data[off] != walRecTag || off+walFrameLen > len(data) {
			discard(off)
			return nil
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
		storedCRC := binary.LittleEndian.Uint32(data[off+5 : off+9])
		if payloadLen > walMaxPayload || off+walFrameLen+payloadLen > len(data) {
			discard(off)
			return nil
		}
		payload := data[off+walFrameLen : off+walFrameLen+payloadLen]
		if crc32.Checksum(payload, castagnoli) != storedCRC {
			discard(off)
			return nil
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			discard(off)
			return nil
		}
		if rec.Seq >= w.nextSeq {
			w.nextSeq = rec.Seq + 1
		}
		if err := apply(rec); err != nil {
			return err
		}
		off += walFrameLen + payloadLen
	}
	return nil
}

// openSegment creates the active segment with a synced header, then
// syncs the directory so the file name itself is durable.
func (w *wal) openSegment() error {
	path := filepath.Join(w.dir, walSegmentName(w.segNum))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := append([]byte(walMagic), walVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.written = int64(walHeaderLen)
	w.synced = int64(walHeaderLen)
	w.broken = nil
	return nil
}

// append frames and writes one record to the active segment and returns
// its sequence number and the offset a caller must Sync to before
// acknowledging. The write lands in the OS (unbuffered file write) but
// is not durable until syncTo covers it.
func (w *wal) append(table string, chunk *btrblocks.Chunk) (seq uint64, off int64, gen uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return 0, 0, 0, fmt.Errorf("ingest: WAL segment is broken by an earlier write failure: %w", w.broken)
	}
	if w.f == nil {
		return 0, 0, 0, fmt.Errorf("ingest: WAL is closed")
	}
	seq = w.nextSeq
	payload := encodeWALPayload(seq, table, chunk)
	frame := make([]byte, 0, walFrameLen+len(payload))
	frame = append(frame, walRecTag)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		// The segment now ends in a partial frame; replay will discard it,
		// but nothing more can be appended safely.
		w.broken = err
		return 0, 0, 0, err
	}
	w.nextSeq++
	w.written += int64(len(frame))
	if w.met != nil {
		w.met.WALRecords.Add(1)
		w.met.WALBytes.Add(int64(len(frame)))
	}
	return seq, w.written, w.segGen, nil
}

// syncTo makes every byte up to off of segment generation gen durable.
// Group commit: the caller that wins the sync mutex fsyncs on behalf of
// everyone who appended before it; latecomers find their offset already
// covered and return without a second fsync.
func (w *wal) syncTo(off int64, gen uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if gen != w.segGen {
		// The segment was rotated after this append; rotation only happens
		// at a checkpoint, which fsyncs first.
		return nil
	}
	if w.synced >= off {
		return nil
	}
	w.mu.Lock()
	f, target := w.f, w.written
	w.mu.Unlock()
	if f == nil {
		return fmt.Errorf("ingest: WAL is closed")
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if w.met != nil {
		w.met.WALSyncs.Add(1)
	}
	w.synced = target
	return nil
}

// checkpoint rotates to a fresh segment and deletes the old ones. The
// caller guarantees every record in the old segments is published (all
// table buffers empty), so losing them loses nothing. Ordering: the new
// segment is created and made durable before the old ones are removed —
// a crash between the two merely replays records that publication
// already supersedes.
func (w *wal) checkpoint() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("ingest: WAL is closed")
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	old := w.segNum
	if err := w.f.Close(); err != nil {
		return err
	}
	w.segNum++
	w.segGen++
	if err := w.openSegment(); err != nil {
		w.f = nil
		return err
	}
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "%08d.wal", &n); err == nil && n <= old {
			os.Remove(filepath.Join(w.dir, e.Name()))
		}
	}
	if w.met != nil {
		w.met.WALCheckpoints.Add(1)
	}
	return syncDir(w.dir)
}

// ensureSeqAfter guarantees the next assigned sequence number is
// strictly greater than seq. Called at startup with the highest
// sequence any published chunk carries: a checkpoint may have pruned
// the records that taught replay about those numbers, and reusing one
// would make a future replay drop a live record as already published.
func (w *wal) ensureSeqAfter(seq uint64) {
	w.mu.Lock()
	if seq >= w.nextSeq {
		w.nextSeq = seq + 1
	}
	w.mu.Unlock()
}

// size returns the logical size of the active segment.
func (w *wal) size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// close fsyncs and closes the active segment.
func (w *wal) close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// crash abandons the WAL without syncing — the test hook that models a
// kill -9: whatever the OS has not yet been told to persist is lost.
func (w *wal) crash() {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable. Some platforms reject directory fsync; that is not fatal.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}

func isSyncUnsupported(err error) bool {
	// EPERM/EACCES and EOF cover sandboxed filesystems; EINVAL and
	// ENOTSUP are what filesystems that simply do not implement
	// directory fsync typically return.
	return err != nil && (os.IsPermission(err) || err == io.EOF ||
		errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP))
}
