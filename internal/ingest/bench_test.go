package ingest

import (
	"fmt"
	"testing"

	"btrblocks"
)

// BenchmarkAppend measures acknowledged ingestion throughput (rows/s)
// as a function of batch size: each iteration appends one batch and
// waits for its WAL sync, which is the durability cost an HTTP client
// pays per request. Small batches are fsync-bound; large batches
// amortize the sync and become memory-bandwidth-bound.
func BenchmarkAppend(b *testing.B) {
	for _, batch := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			dir := b.TempDir()
			svc, err := Open(Config{
				Dir:              dir,
				ChunkRows:        1 << 30, // benchmark the WAL path, not the flush
				FlushInterval:    -1,
				CompactMinChunks: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			chunk := benchChunk(batch)
			b.SetBytes(int64(chunk.UncompressedBytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Append("bench", chunk); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkAppendParallel measures group-commit scaling: many
// goroutines appending concurrently share fsyncs, so acknowledged
// rows/s should rise well past the serial number.
func BenchmarkAppendParallel(b *testing.B) {
	const batch = 100
	dir := b.TempDir()
	svc, err := Open(Config{
		Dir:              dir,
		ChunkRows:        1 << 30,
		FlushInterval:    -1,
		CompactMinChunks: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		chunk := benchChunk(batch)
		for pb.Next() {
			if _, err := svc.Append("bench", chunk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkFlushPublish measures the compress-and-publish side: one
// full buffer becoming a committed chunk on disk.
func BenchmarkFlushPublish(b *testing.B) {
	for _, rows := range []int{1000, 16000, 64000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			dir := b.TempDir()
			svc, err := Open(Config{
				Dir:              dir,
				ChunkRows:        1 << 30,
				FlushInterval:    -1,
				CompactMinChunks: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			chunk := benchChunk(rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Append("bench", chunk); err != nil {
					b.Fatal(err)
				}
				if err := svc.FlushTable("bench"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// benchChunk builds a realistic mixed batch: id, a low-cardinality
// dimension string, and a metric value.
func benchChunk(rows int) *btrblocks.Chunk {
	ids := make([]int64, rows)
	vals := make([]float64, rows)
	var dim btrblocks.Column
	dim.Name, dim.Type = "dim", btrblocks.TypeString
	for i := 0; i < rows; i++ {
		ids[i] = int64(i)
		vals[i] = float64(i%97) * 1.5
		dim.Strings = dim.Strings.Append(fmt.Sprintf("region-%02d", i%16))
	}
	return &btrblocks.Chunk{Columns: []btrblocks.Column{
		{Name: "id", Type: btrblocks.TypeInt64, Ints64: ids},
		dim,
		{Name: "val", Type: btrblocks.TypeDouble, Doubles: vals},
	}}
}
