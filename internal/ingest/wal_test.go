package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"btrblocks"
)

func testChunk(vals ...int64) *btrblocks.Chunk {
	col := btrblocks.Column{Name: "v", Type: btrblocks.TypeInt64, Ints64: vals}
	return &btrblocks.Chunk{Columns: []btrblocks.Column{col}}
}

func TestWALPayloadRoundTrip(t *testing.T) {
	chunk := &btrblocks.Chunk{Columns: []btrblocks.Column{
		{Name: "a", Type: btrblocks.TypeInt, Ints: []int32{1, -2, 3}},
		{Name: "b", Type: btrblocks.TypeInt64, Ints64: []int64{10, 20, 30}},
		{Name: "c", Type: btrblocks.TypeDouble, Doubles: []float64{1.5, 0, -2.25}},
		{Name: "s", Type: btrblocks.TypeString},
	}}
	for _, v := range []string{"x", "", "hello, wal"} {
		chunk.Columns[3].Strings = chunk.Columns[3].Strings.Append(v)
	}
	chunk.Columns[2].Nulls = btrblocks.NewNullMask()
	chunk.Columns[2].Nulls.SetNull(1)

	payload := encodeWALPayload(42, "metrics", chunk)
	rec, err := decodeWALPayload(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rec.Seq != 42 || rec.Table != "metrics" {
		t.Fatalf("got seq=%d table=%q", rec.Seq, rec.Table)
	}
	if got := rec.Chunk.NumRows(); got != 3 {
		t.Fatalf("rows = %d, want 3", got)
	}
	if rec.Chunk.Columns[0].Ints[1] != -2 || rec.Chunk.Columns[1].Ints64[2] != 30 {
		t.Fatal("int values corrupted")
	}
	if rec.Chunk.Columns[2].Doubles[2] != -2.25 {
		t.Fatal("double values corrupted")
	}
	if !rec.Chunk.Columns[2].Nulls.IsNull(1) || rec.Chunk.Columns[2].Nulls.IsNull(0) {
		t.Fatal("null mask corrupted")
	}
	if rec.Chunk.Columns[3].Strings.At(2) != "hello, wal" {
		t.Fatal("string values corrupted")
	}
}

func TestWALPayloadDecodeRejectsGarbage(t *testing.T) {
	payload := encodeWALPayload(1, "t", testChunk(1, 2, 3))
	for cut := 0; cut < len(payload); cut += 3 {
		if _, err := decodeWALPayload(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, NewMetrics(), func(*walRecord) error { t.Fatal("unexpected replay"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		_, off, gen, err := w.append("t", testChunk(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.syncTo(off, gen); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	var got []int64
	met := NewMetrics()
	w2, err := openWAL(dir, met, func(rec *walRecord) error {
		got = append(got, rec.Chunk.Columns[0].Ints64...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(got) != 5 {
		t.Fatalf("replayed %d rows, want 5: %v", len(got), got)
	}
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("row %d = %d", i, v)
		}
	}
	if w2.nextSeq != 6 {
		t.Fatalf("nextSeq = %d, want 6", w2.nextSeq)
	}
}

// activeSegment returns the highest-numbered WAL segment file.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best := ""
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "%08d.wal", &n); err == nil {
			if best == "" || e.Name() > best {
				best = e.Name()
			}
		}
	}
	if best == "" {
		t.Fatal("no WAL segment found")
	}
	return filepath.Join(dir, best)
}

func TestWALTornTailsDiscarded(t *testing.T) {
	tears := map[string]func([]byte) []byte{
		"partial frame header": func(b []byte) []byte { return append(b, walRecTag, 0x10) },
		"length past EOF": func(b []byte) []byte {
			b = append(b, walRecTag)
			b = binary.LittleEndian.AppendUint32(b, 1000)
			b = binary.LittleEndian.AppendUint32(b, 0xdead)
			return append(b, "short"...)
		},
		"crc mismatch": func(b []byte) []byte {
			payload := encodeWALPayload(99, "t", testChunk(99))
			b = append(b, walRecTag)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
			b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli)+1)
			return append(b, payload...)
		},
		"bad tag":       func(b []byte) []byte { return append(b, 'Z', 1, 2, 3) },
		"truncated mid": func(b []byte) []byte { return b[:len(b)-3] },
	}
	for name, tear := range tears {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := openWAL(dir, NewMetrics(), func(*walRecord) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(1); i <= 3; i++ {
				_, off, gen, err := w.append("t", testChunk(i))
				if err != nil {
					t.Fatal(err)
				}
				if err := w.syncTo(off, gen); err != nil {
					t.Fatal(err)
				}
			}
			w.crash()

			seg := activeSegment(t, dir)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, tear(data), 0o644); err != nil {
				t.Fatal(err)
			}

			var got []int64
			met := NewMetrics()
			w2, err := openWAL(dir, met, func(rec *walRecord) error {
				got = append(got, rec.Chunk.Columns[0].Ints64...)
				return nil
			})
			if err != nil {
				t.Fatalf("reopen after tear: %v", err)
			}
			defer w2.close()
			// "truncated mid" cuts into record 3's synced bytes; the other
			// tears leave all 3 records intact and damage only the tail.
			want := 3
			if name == "truncated mid" {
				want = 2
			}
			if len(got) != want {
				t.Fatalf("replayed %d records, want %d (%v)", len(got), want, got)
			}
			if met.WALDiscardedTails.Load() == 0 {
				t.Fatal("discarded-tail metric not counted")
			}
			// New appends must go to a fresh segment and survive.
			if _, off, gen, err := w2.append("t", testChunk(50)); err != nil {
				t.Fatal(err)
			} else if err := w2.syncTo(off, gen); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWALCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, NewMetrics(), func(*walRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if _, off, gen, err := w.append("t", testChunk(1)); err != nil {
		t.Fatal(err)
	} else if err := w.syncTo(off, gen); err != nil {
		t.Fatal(err)
	}
	before := activeSegment(t, dir)
	if err := w.checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(before); !os.IsNotExist(err) {
		t.Fatalf("old segment %s not pruned (err=%v)", before, err)
	}
	// Records appended after the checkpoint land in the new segment.
	if _, off, gen, err := w.append("t", testChunk(2)); err != nil {
		t.Fatal(err)
	} else if err := w.syncTo(off, gen); err != nil {
		t.Fatal(err)
	}
	if w.size() <= int64(walHeaderLen) {
		t.Fatal("new segment holds no records")
	}
}

func TestWALSeqMonotonicAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	w, _ := openWAL(dir, NewMetrics(), func(*walRecord) error { return nil })
	seq1, off, gen, err := w.append("t", testChunk(1))
	if err != nil {
		t.Fatal(err)
	}
	w.syncTo(off, gen)
	w.close()

	w2, err := openWAL(dir, NewMetrics(), func(*walRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	seq2, _, _, err := w2.append("t", testChunk(2))
	if err != nil {
		t.Fatal(err)
	}
	if seq2 <= seq1 {
		t.Fatalf("sequence went backwards: %d then %d", seq1, seq2)
	}
}
