package ingest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"btrblocks"
	"btrblocks/internal/blockstore"
	"btrblocks/internal/obs"
)

// clientInvalidator is what cmd/btringest wires for -notify: a
// blockstore client pushing invalidations, carrying the publishing
// trace across the process boundary via InvalidateContext.
type clientInvalidator struct{ cl *blockstore.Client }

func (ci clientInvalidator) Invalidate(name string) {
	ci.InvalidateContext(context.Background(), name)
}

func (ci clientInvalidator) InvalidateContext(ctx context.Context, name string) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	ci.cl.Invalidate(ctx, name)
}

func spanNames(ss *obs.SpanSet) map[string]obs.SpanRecord {
	out := make(map[string]obs.SpanRecord, len(ss.Spans))
	for _, s := range ss.Spans {
		out[s.Name] = s
	}
	return out
}

func attrVal(s obs.SpanRecord, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTracePropagatesAcrossServers follows one trace ID end to end
// through two HTTP servers: a traced append into the ingest service
// triggers a threshold flush whose WAL write, cascade compression,
// atomic publication, and remote invalidation all join the trace; the
// invalidation crosses into a blockstore server which records its side
// under the same trace ID; finally a scan against the published file
// extends the same trace on the serving side. Both servers' /v1/spans
// must return the trace with parent/child links intact, and the
// X-Request-ID sent with the append must ride along.
func TestTracePropagatesAcrossServers(t *testing.T) {
	dir := t.TempDir()

	// Serving side: a blockstore server over the ingest target directory
	// (seeded, because an empty store refuses to open).
	seed, err := btrblocks.CompressColumn(btrblocks.Column{
		Name: "seed", Type: btrblocks.TypeInt, Ints: []int32{1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seed.btr"), seed, 0o644); err != nil {
		t.Fatal(err)
	}
	bs, err := blockstore.Open(dir, blockstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	servedRec := obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "btrserved"})
	serveSrv := httptest.NewServer(blockstore.NewServer(bs, blockstore.WithSpans(servedRec)))
	defer serveSrv.Close()
	serveCl := blockstore.NewClient(serveSrv.URL)

	// Ingest side: span-recording service notifying the serving side.
	ingestRec := obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "btringest"})
	svc, err := Open(Config{
		Dir:              dir,
		ChunkRows:        64,
		FlushInterval:    -1, // only the traced threshold flush may publish
		CompactMinChunks: -1,
		Invalidator:      clientInvalidator{cl: serveCl},
		Spans:            ingestRec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ingestSrv := httptest.NewServer(NewHandler(svc))
	defer ingestSrv.Close()
	ingestCl := blockstore.NewClient(ingestSrv.URL)

	// The traced append: one request, 80 rows, crossing the 64-row flush
	// threshold so publication happens under this trace.
	local := obs.NewSpanRecorder(obs.SpanRecorderConfig{Process: "client"})
	ctx, root := local.StartRoot(context.Background(), "client.append")
	ctx = obs.WithRequestID(ctx, "req-propagation-1")
	var body strings.Builder
	for i := 0; i < 80; i++ {
		body.WriteString("traced v=")
		body.WriteString(strings.Repeat("1", 1+i%3))
		body.WriteString("i\n")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ingestSrv.URL+"/v1/write", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: %s", resp.Status)
	}
	root.End()
	traceID := root.TraceID().String()

	// The flush is asynchronous: wait until the trace's invalidate span
	// lands in the ingest recorder.
	var ingestSet *obs.SpanSet
	deadline := time.Now().Add(10 * time.Second)
	for {
		ss, err := ingestCl.Spans(context.Background(), traceID, 0)
		if err != nil {
			t.Fatalf("ingest /v1/spans: %v", err)
		}
		if _, ok := spanNames(ss)["invalidate"]; ok {
			ingestSet = ss
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never reached invalidation (have %d spans)", traceID, len(ss.Spans))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := ingestSet.Validate(); err != nil {
		t.Fatalf("ingest span set: %v", err)
	}
	ingestByName := spanNames(ingestSet)
	for _, name := range []string{"btringest/v1/write", "wal.append", "wal.sync", "ingest.flush", "compress.cascade", "publish.atomic", "invalidate"} {
		s, ok := ingestByName[name]
		if !ok {
			t.Fatalf("ingest trace missing span %q", name)
		}
		if s.TraceID != traceID {
			t.Fatalf("span %q in trace %s, want %s", name, s.TraceID, traceID)
		}
	}
	serverRoot := ingestByName["btringest/v1/write"]
	if serverRoot.ParentID != root.SpanID().String() {
		t.Fatalf("ingest server span parent = %s, want client root %s", serverRoot.ParentID, root.SpanID())
	}
	if got := attrVal(serverRoot, "request_id"); got != "req-propagation-1" {
		t.Fatalf("ingest server span request_id = %q, want the inbound header", got)
	}

	// A scan of the just-published file, traced under the same trace.
	var published string
	files, err := serveCl.Files(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasPrefix(f.Name, "traced/") && strings.HasSuffix(f.Name, ".btr") {
			published = f.Name
		}
	}
	if published == "" {
		t.Fatal("no published file visible on the serving side")
	}
	sctx, scan := obs.StartChild(obs.ContextWithSpan(context.Background(), root), "client.scan")
	if _, err := serveCl.Block(sctx, published, 0); err != nil {
		t.Fatalf("scan %s: %v", published, err)
	}
	scan.End()

	// The serving side must hold the same trace: the invalidation parented
	// under the ingest side's invalidate span, and the scan under our
	// client span — one trace ID across both servers.
	servedSet, err := serveCl.Spans(context.Background(), traceID, 0)
	if err != nil {
		t.Fatalf("served /v1/spans: %v", err)
	}
	if err := servedSet.Validate(); err != nil {
		t.Fatalf("served span set: %v", err)
	}
	ingestByID := make(map[string]obs.SpanRecord, len(ingestSet.Spans))
	for _, s := range ingestSet.Spans {
		ingestByID[s.SpanID] = s
	}
	var sawInvalidate, sawScan bool
	for _, s := range servedSet.Spans {
		if s.TraceID != traceID {
			t.Fatalf("served span %q in trace %s, want %s", s.Name, s.TraceID, traceID)
		}
		if strings.HasPrefix(s.Name, "btrserved/v1/invalidate") {
			parent, ok := ingestByID[s.ParentID]
			if !ok || parent.Name != "invalidate" {
				t.Fatalf("served invalidate parent %s does not resolve to the ingest invalidate span", s.ParentID)
			}
			if got := attrVal(s, "request_id"); got != "req-propagation-1" {
				t.Fatalf("served invalidate request_id = %q, want the append's", got)
			}
			sawInvalidate = true
		}
		if s.Name == "btrserved/v1/block" && s.ParentID == scan.SpanID().String() {
			sawScan = true
		}
	}
	if !sawInvalidate {
		t.Fatalf("trace %s never crossed into the serving process", traceID)
	}
	if !sawScan {
		t.Fatalf("scan of %s did not join trace %s on the serving side", published, traceID)
	}
}
