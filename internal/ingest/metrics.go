package ingest

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"btrblocks/internal/obs"
)

// Metrics counts the service's behavior and renders Prometheus text at
// /metrics. All fields are safe for concurrent use; the zero value is
// ready (NewMetrics exists for symmetry with blockstore).
type Metrics struct {
	// Append path.
	Appends      atomic.Int64 // acknowledged append batches
	AppendedRows atomic.Int64 // acknowledged rows
	AppendErrors atomic.Int64 // rejected or failed appends

	// WAL.
	WALRecords        atomic.Int64 // records framed and written
	WALBytes          atomic.Int64 // bytes framed and written
	WALSyncs          atomic.Int64 // fsyncs issued (group commit coalesces)
	WALCheckpoints    atomic.Int64 // segment rotations after full publish
	WALReplayed       atomic.Int64 // records recovered at startup
	WALReplayedRows   atomic.Int64 // rows recovered at startup
	WALSkippedRecords atomic.Int64 // replayed records already published
	WALDiscardedTails atomic.Int64 // torn/invalid tails discarded at replay
	WALDiscardedBytes atomic.Int64 // bytes in discarded tails

	// Flush / publish.
	Flushes         atomic.Int64 // chunks published
	FlushedRows     atomic.Int64 // rows published
	PublishedFiles  atomic.Int64 // column files renamed into the store
	PublishedBytes  atomic.Int64 // compressed bytes published
	PublishErrors   atomic.Int64 // failed flush attempts (rows retained)
	UncommittedDrop atomic.Int64 // startup removals of uncommitted files

	// Compaction.
	Compactions           atomic.Int64 // compaction runs that published
	CompactedChunks       atomic.Int64 // input chunks consumed
	CompactedRows         atomic.Int64 // rows re-compressed
	CompactionBytesBefore atomic.Int64 // input compressed bytes
	CompactionBytesAfter  atomic.Int64 // output compressed bytes
	SupersededChunks      atomic.Int64 // startup removals of compacted-over chunks

	// Invalidations pushed to the serving layer.
	Invalidations atomic.Int64

	// Latency histograms.
	AppendLatency  obs.Histogram // whole append incl. WAL sync
	WALSyncLatency obs.Histogram // fsync wait (group-commit amortized)
	FlushLatency   obs.Histogram // compress + publish of one chunk
	CompactLatency obs.Histogram // one compaction run

	// Per-route HTTP counters.
	mu     sync.Mutex
	routes map[string]*routeMetrics
}

type routeMetrics struct {
	Requests atomic.Int64
	Errors   atomic.Int64
	Latency  obs.Histogram
}

// NewMetrics returns an empty Metrics.
func NewMetrics() *Metrics { return &Metrics{} }

// Route returns the counters for one HTTP route, creating them on first
// use.
func (m *Metrics) Route(route string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.routes == nil {
		m.routes = make(map[string]*routeMetrics)
	}
	r := m.routes[route]
	if r == nil {
		r = &routeMetrics{}
		m.routes[route] = r
	}
	return r
}

// WriteTo renders the metrics in Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("btringest_appends_total", "Acknowledged append batches.", m.Appends.Load())
	counter("btringest_appended_rows_total", "Acknowledged rows.", m.AppendedRows.Load())
	counter("btringest_append_errors_total", "Rejected or failed appends.", m.AppendErrors.Load())
	counter("btringest_wal_records_total", "WAL records written.", m.WALRecords.Load())
	counter("btringest_wal_bytes_total", "WAL bytes written (frames included).", m.WALBytes.Load())
	counter("btringest_wal_syncs_total", "WAL fsyncs issued (group commit coalesces).", m.WALSyncs.Load())
	counter("btringest_wal_checkpoints_total", "WAL segment rotations after full publish.", m.WALCheckpoints.Load())
	counter("btringest_wal_replayed_records_total", "WAL records recovered at startup.", m.WALReplayed.Load())
	counter("btringest_wal_replayed_rows_total", "Rows recovered from the WAL at startup.", m.WALReplayedRows.Load())
	counter("btringest_wal_skipped_records_total", "Replayed WAL records already covered by published chunks.", m.WALSkippedRecords.Load())
	counter("btringest_wal_discarded_tails_total", "Torn or invalid WAL tails discarded at replay.", m.WALDiscardedTails.Load())
	counter("btringest_wal_discarded_bytes_total", "Bytes in discarded WAL tails.", m.WALDiscardedBytes.Load())
	counter("btringest_flushes_total", "Chunks published.", m.Flushes.Load())
	counter("btringest_flushed_rows_total", "Rows published.", m.FlushedRows.Load())
	counter("btringest_published_files_total", "Column files atomically renamed into the store.", m.PublishedFiles.Load())
	counter("btringest_published_bytes_total", "Compressed bytes published.", m.PublishedBytes.Load())
	counter("btringest_publish_errors_total", "Failed flush attempts (rows retained in the buffer).", m.PublishErrors.Load())
	counter("btringest_uncommitted_dropped_total", "Uncommitted chunk files removed at startup.", m.UncommittedDrop.Load())
	counter("btringest_compactions_total", "Compaction runs that published a merged chunk.", m.Compactions.Load())
	counter("btringest_compacted_chunks_total", "Small chunks consumed by compaction.", m.CompactedChunks.Load())
	counter("btringest_compacted_rows_total", "Rows re-compressed by compaction.", m.CompactedRows.Load())
	counter("btringest_compaction_bytes_before_total", "Compressed bytes entering compaction.", m.CompactionBytesBefore.Load())
	counter("btringest_compaction_bytes_after_total", "Compressed bytes leaving compaction.", m.CompactionBytesAfter.Load())
	counter("btringest_superseded_chunks_total", "Chunks removed at startup because a compacted chunk covers them.", m.SupersededChunks.Load())
	counter("btringest_invalidations_total", "Cache invalidations pushed to the serving layer.", m.Invalidations.Load())

	hist := func(name, help string, h *obs.Histogram) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		h.WritePromLines(cw, name, "")
	}
	hist("btringest_append_duration_seconds", "Append latency including WAL sync.", &m.AppendLatency)
	hist("btringest_wal_sync_duration_seconds", "WAL fsync wait (group-commit amortized).", &m.WALSyncLatency)
	hist("btringest_flush_duration_seconds", "Chunk compress+publish latency.", &m.FlushLatency)
	hist("btringest_compact_duration_seconds", "Compaction run latency.", &m.CompactLatency)

	m.mu.Lock()
	routes := make([]string, 0, len(m.routes))
	for r := range m.routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	rms := make(map[string]*routeMetrics, len(routes))
	for _, r := range routes {
		rms[r] = m.routes[r]
	}
	m.mu.Unlock()

	fmt.Fprintf(cw, "# HELP btringest_http_requests_total HTTP requests by route.\n# TYPE btringest_http_requests_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(cw, "btringest_http_requests_total{route=%q} %d\n", r, rms[r].Requests.Load())
	}
	fmt.Fprintf(cw, "# HELP btringest_http_errors_total Non-2xx HTTP responses by route.\n# TYPE btringest_http_errors_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(cw, "btringest_http_errors_total{route=%q} %d\n", r, rms[r].Errors.Load())
	}
	fmt.Fprintf(cw, "# HELP btringest_http_request_duration_seconds Request latency by route.\n# TYPE btringest_http_request_duration_seconds histogram\n")
	for _, r := range routes {
		rms[r].Latency.WritePromLines(cw, "btringest_http_request_duration_seconds", fmt.Sprintf("route=%q", r))
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
