package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"btrblocks"
)

// quietConfig is a service config with the background timers effectively
// disabled so tests drive flushes and compactions explicitly.
func quietConfig(dir string) Config {
	return Config{
		Dir:              dir,
		ChunkRows:        1 << 20, // never threshold-flush unless a test wants it
		FlushInterval:    -1,
		CompactMinChunks: -1,
	}
}

// tableValues decodes every committed chunk of a table directly from
// disk and returns the multiset of formatted rows, verifying each
// column file along the way. Reading from disk (not through the
// service) is the point: this is what btrserved and any other consumer
// would see.
func tableValues(t *testing.T, dir, table string) map[string]int {
	t.Helper()
	tdir := filepath.Join(dir, table)
	entries, err := os.ReadDir(tdir)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]int{}
		}
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".commit") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(tdir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var m chunkMarker
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		cols := make([]btrblocks.Column, len(m.Columns))
		for i, mc := range m.Columns {
			raw, err := os.ReadFile(filepath.Join(tdir, mc.File))
			if err != nil {
				t.Fatalf("%s: committed column file missing: %v", e.Name(), err)
			}
			if rep := btrblocks.Verify(raw, nil); !rep.OK {
				t.Fatalf("%s: published file corrupt: %v", mc.File, rep.Errors)
			}
			col, err := btrblocks.DecompressColumn(raw, nil)
			if err != nil {
				t.Fatalf("%s: %v", mc.File, err)
			}
			cols[i] = col
		}
		chunk := btrblocks.Chunk{Columns: cols}
		if chunk.NumRows() != m.Rows {
			t.Fatalf("%s: decodes to %d rows, marker says %d", e.Name(), chunk.NumRows(), m.Rows)
		}
		for r := 0; r < m.Rows; r++ {
			got[formatRow(&chunk, r)]++
		}
	}
	return got
}

// formatRow renders one row of a chunk as a stable string key.
func formatRow(chunk *btrblocks.Chunk, r int) string {
	var b strings.Builder
	for i := range chunk.Columns {
		col := &chunk.Columns[i]
		if i > 0 {
			b.WriteByte('|')
		}
		if col.Nulls.IsNull(r) {
			b.WriteString("NULL")
			continue
		}
		switch col.Type {
		case btrblocks.TypeInt:
			fmt.Fprintf(&b, "%d", col.Ints[r])
		case btrblocks.TypeInt64:
			fmt.Fprintf(&b, "%d", col.Ints64[r])
		case btrblocks.TypeDouble:
			fmt.Fprintf(&b, "%g", col.Doubles[r])
		case btrblocks.TypeString:
			b.WriteString(col.Strings.At(r))
		}
	}
	return b.String()
}

func diffMultiset(t *testing.T, want, got map[string]int) {
	t.Helper()
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if want[k] != got[k] {
			t.Errorf("row %q: want %d, got %d", k, want[k], got[k])
		}
	}
}

func TestServiceAppendFlushPublish(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	want := map[string]int{}
	for i := int64(0); i < 10; i++ {
		chunk := testChunk(i, i+100)
		if _, err := svc.Append("events", chunk); err != nil {
			t.Fatal(err)
		}
		want[fmt.Sprint(i)]++
		want[fmt.Sprint(i+100)]++
	}
	if err := svc.FlushTable("events"); err != nil {
		t.Fatal(err)
	}
	diffMultiset(t, want, tableValues(t, dir, "events"))

	st := svc.Stats()
	if len(st) != 1 || st[0].Table != "events" || st[0].PublishedRows != 20 || st[0].BufferedRows != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServiceThresholdFlush(t *testing.T) {
	dir := t.TempDir()
	cfg := quietConfig(dir)
	cfg.ChunkRows = 10
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitFlushedRows := func(n int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if svc.Metrics().FlushedRows.Load() >= n {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("flushed rows = %d, want >= %d", svc.Metrics().FlushedRows.Load(), n)
	}
	// Each threshold crossing guarantees the rows eventually publish
	// without an explicit flush (how many flushes carry them is up to
	// the flusher's timing).
	for i := int64(0); i < 12; i++ {
		if _, err := svc.Append("t", testChunk(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFlushedRows(10)
	for i := int64(100); i < 112; i++ {
		if _, err := svc.Append("t", testChunk(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFlushedRows(20)
	if svc.Metrics().Flushes.Load() == 0 {
		t.Fatal("rows published without any flush being counted")
	}
}

func TestServiceRecoversUnflushedRowsFromWAL(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	// First half is flushed; second half lives only in the WAL.
	for i := int64(0); i < 6; i++ {
		if _, err := svc.Append("t", testChunk(i)); err != nil {
			t.Fatal(err)
		}
		want[fmt.Sprint(i)]++
	}
	if err := svc.FlushTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := int64(6); i < 11; i++ {
		if _, err := svc.Append("t", testChunk(i)); err != nil {
			t.Fatal(err)
		}
		want[fmt.Sprint(i)]++
	}
	svc.crash()

	svc2, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer svc2.Close()
	if got := svc2.Metrics().WALReplayedRows.Load(); got != 5 {
		t.Fatalf("replayed rows = %d, want 5", got)
	}
	if err := svc2.FlushAll(); err != nil {
		t.Fatal(err)
	}
	diffMultiset(t, want, tableValues(t, dir, "t"))
}

func TestServiceReplaySkipsPublishedRecords(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for i := int64(0); i < 4; i++ {
		if _, err := svc.Append("t", testChunk(i)); err != nil {
			t.Fatal(err)
		}
		want[fmt.Sprint(i)]++
	}
	// A second table with buffered rows keeps the WAL from checkpointing
	// when t flushes, so t's records are still in the log at the crash.
	if _, err := svc.Append("u", testChunk(7)); err != nil {
		t.Fatal(err)
	}
	if err := svc.FlushTable("t"); err != nil {
		t.Fatal(err)
	}
	// Crash without a checkpoint: the WAL still holds t's 4 records, the
	// store already holds their chunk. Replay must not double them.
	svc.crash()

	svc2, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Metrics().WALSkippedRecords.Load(); got != 4 {
		t.Fatalf("skipped records = %d, want 4", got)
	}
	if err := svc2.FlushAll(); err != nil {
		t.Fatal(err)
	}
	diffMultiset(t, want, tableValues(t, dir, "t"))
}

func TestServiceRemovesUncommittedFilesAtStartup(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Append("t", testChunk(1)); err != nil {
		t.Fatal(err)
	}
	if err := svc.FlushTable("t"); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// Simulate a crash mid-publication: a tmp file and a chunk column
	// file with no commit marker.
	tdir := filepath.Join(dir, "t")
	stray1 := filepath.Join(tdir, "c-00000000000000ff-0.v.btr.tmp")
	stray2 := filepath.Join(tdir, "c-00000000000000ff-0.v.btr")
	os.WriteFile(stray1, []byte("partial"), 0o644)
	os.WriteFile(stray2, []byte("unmarked"), 0o644)
	// A non-chunk file in the same directory must be left alone.
	other := filepath.Join(tdir, "README")
	os.WriteFile(other, []byte("keep me"), 0o644)

	svc2, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if _, err := os.Stat(stray1); !os.IsNotExist(err) {
		t.Error("tmp file survived startup")
	}
	if _, err := os.Stat(stray2); !os.IsNotExist(err) {
		t.Error("uncommitted chunk file survived startup")
	}
	if _, err := os.Stat(other); err != nil {
		t.Error("unrelated file was removed")
	}
	if svc2.Metrics().UncommittedDrop.Load() != 2 {
		t.Errorf("UncommittedDrop = %d, want 2", svc2.Metrics().UncommittedDrop.Load())
	}
}

func TestServiceSchemaEnforcement(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Append("t", testChunk(1)); err != nil {
		t.Fatal(err)
	}
	wrong := &btrblocks.Chunk{Columns: []btrblocks.Column{
		{Name: "other", Type: btrblocks.TypeInt64, Ints64: []int64{1}},
	}}
	if _, err := svc.Append("t", wrong); !errors.Is(err, ErrSchema) {
		t.Fatalf("mismatched schema: err = %v, want ErrSchema", err)
	}
	if _, err := svc.Append("bad/name", testChunk(1)); !errors.Is(err, ErrBadName) {
		t.Fatalf("bad table name: err = %v, want ErrBadName", err)
	}
	if _, err := svc.Append("t", testChunk()); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty batch: err = %v, want ErrEmptyBatch", err)
	}
	ragged := &btrblocks.Chunk{Columns: []btrblocks.Column{
		{Name: "v", Type: btrblocks.TypeInt64, Ints64: []int64{1, 2}},
		{Name: "w", Type: btrblocks.TypeInt64, Ints64: []int64{1}},
	}}
	if _, err := svc.Append("t2", ragged); !errors.Is(err, ErrSchema) {
		t.Fatalf("ragged batch: err = %v, want ErrSchema", err)
	}
}

func TestServiceCreateTable(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	specs := []ColumnSpec{{Name: "a", Type: "int64"}, {Name: "b", Type: "string"}}
	if err := svc.CreateTable("t", specs); err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateTable("t", specs); err != nil {
		t.Fatalf("idempotent create: %v", err)
	}
	if err := svc.CreateTable("t", specs[:1]); !errors.Is(err, ErrSchema) {
		t.Fatalf("conflicting create: err = %v, want ErrSchema", err)
	}
	schema, ok := svc.Schema("t")
	if !ok || len(schema) != 2 || schema[1].Type != btrblocks.TypeString {
		t.Fatalf("schema = %v ok=%v", schema, ok)
	}
}

func TestServiceCheckpointAfterFullFlush(t *testing.T) {
	dir := t.TempDir()
	svc, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := int64(0); i < 3; i++ {
		if _, err := svc.Append("t", testChunk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if svc.Metrics().WALCheckpoints.Load() != 1 {
		t.Fatalf("checkpoints = %d, want 1", svc.Metrics().WALCheckpoints.Load())
	}
	// After the checkpoint the WAL is empty; a reopen replays nothing.
	svc.Close()
	svc2, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Metrics().WALReplayed.Load() + svc2.Metrics().WALSkippedRecords.Load(); got != 0 {
		t.Fatalf("post-checkpoint reopen touched %d records, want 0", got)
	}
}

// TestCheckpointWaitsForInFlightPublish pins the durability contract
// against a cross-table race: table a's flush has taken its buffer (so
// the buffer looks empty) but its chunk has not committed when table b
// flushes. b's flush must not checkpoint the WAL — the log still holds
// the only durable copy of a's acknowledged rows. The test holds a's
// publish in flight via the invalidator hook, makes it fail (commit
// marker blocked by a directory squatting on its temp path), flushes b,
// crashes, and verifies a's rows survive replay.
func TestCheckpointWaitsForInFlightPublish(t *testing.T) {
	dir := t.TempDir()
	inv := &blockingInvalidator{
		prefix:  "a/",
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	cfg := quietConfig(dir)
	cfg.Invalidator = inv
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	want := map[string]int{}
	var lastSeqA uint64
	for i := int64(0); i < 3; i++ {
		seq, err := svc.Append("a", testChunk(i))
		if err != nil {
			t.Fatal(err)
		}
		want[fmt.Sprint(i)]++
		lastSeqA = seq
	}
	if _, err := svc.Append("b", testChunk(100)); err != nil {
		t.Fatal(err)
	}

	// Rig a's publish to fail after its column file is written: the
	// commit marker's temp path is occupied by a directory, so the
	// marker write errors and the flush takes the restore path.
	base := fmt.Sprintf("c-%016x-0", lastSeqA)
	if err := os.MkdirAll(filepath.Join(dir, "a", base+".commit.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}

	flushDone := make(chan error, 1)
	go func() { flushDone <- svc.FlushTable("a") }()
	<-inv.entered // a's column file is on disk; the marker is not

	// a's buffer is empty (taken by the in-flight publish) and b's flush
	// empties the last buffer — exactly the state where a premature
	// checkpoint would prune the segments backing a's rows.
	if err := svc.FlushTable("b"); err != nil {
		t.Fatal(err)
	}
	if n := svc.Metrics().WALCheckpoints.Load(); n != 0 {
		t.Errorf("checkpoints with a publish in flight = %d, want 0", n)
	}
	close(inv.release)
	if err := <-flushDone; err == nil {
		t.Fatal("flush of a succeeded; the test meant it to fail mid-publish")
	}

	svc.crash()
	svc2, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer svc2.Close()
	if got := svc2.Metrics().WALReplayedRows.Load(); got != 3 {
		t.Errorf("replayed rows = %d, want 3 (a's acked rows lost)", got)
	}
	if err := os.RemoveAll(filepath.Join(dir, "a", base+".commit.tmp")); err != nil {
		t.Fatal(err)
	}
	if err := svc2.FlushAll(); err != nil {
		t.Fatal(err)
	}
	diffMultiset(t, want, tableValues(t, dir, "a"))
}

// blockingInvalidator parks the first invalidation whose name matches
// prefix until released, holding that publish in flight.
type blockingInvalidator struct {
	prefix  string
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (b *blockingInvalidator) Invalidate(name string) {
	if strings.HasPrefix(name, b.prefix) {
		b.once.Do(func() {
			close(b.entered)
			<-b.release
		})
	}
}

func TestServiceInvalidatorNotified(t *testing.T) {
	dir := t.TempDir()
	inv := &recordingInvalidator{}
	cfg := quietConfig(dir)
	cfg.Invalidator = inv
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Append("t", testChunk(1)); err != nil {
		t.Fatal(err)
	}
	if err := svc.FlushTable("t"); err != nil {
		t.Fatal(err)
	}
	names := inv.take()
	if len(names) < 2 {
		t.Fatalf("invalidations = %v, want column file + marker", names)
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "t/c-") {
			t.Fatalf("unexpected invalidation %q", n)
		}
	}
}

type recordingInvalidator struct {
	mu    sync.Mutex
	names []string
}

func (r *recordingInvalidator) Invalidate(name string) {
	r.mu.Lock()
	r.names = append(r.names, name)
	r.mu.Unlock()
}

func (r *recordingInvalidator) take() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.names
	r.names = nil
	return out
}
