package ingest

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	svc, err := Open(quietConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv, dir
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(out)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(out)
}

func TestHTTPAppendJSONAndFlush(t *testing.T) {
	_, srv, dir := newTestServer(t)

	code, body := post(t, srv.URL+"/v1/append",
		`{"table":"m","rows":[{"v":1,"tag":"a"},{"v":2,"tag":"b"},{"v":3}]}`)
	if code != http.StatusOK {
		t.Fatalf("append: %d %s", code, body)
	}
	var res appendResult
	if err := json.Unmarshal([]byte(body), &res); err != nil || res.Rows != 3 || res.Seq == 0 {
		t.Fatalf("append response: %s", body)
	}

	code, body = post(t, srv.URL+"/v1/flush/m", "")
	if code != http.StatusOK {
		t.Fatalf("flush: %d %s", code, body)
	}
	got := tableValues(t, dir, "m")
	// Missing "tag" in the third row becomes NULL.
	want := map[string]int{"a|1": 1, "b|2": 1, "NULL|3": 1}
	diffMultiset(t, want, got)
}

func TestHTTPLineProtocol(t *testing.T) {
	_, srv, dir := newTestServer(t)
	lines := "cpu v=1i,host=\"a\"\ncpu v=2i,host=\"b\"\n\n# comment\ncpu v=3i,host=\"a\"\n"
	code, body := post(t, srv.URL+"/v1/write", lines)
	if code != http.StatusOK {
		t.Fatalf("write: %d %s", code, body)
	}
	if code, body = post(t, srv.URL+"/v1/flush", ""); code != http.StatusOK {
		t.Fatalf("flush: %d %s", code, body)
	}
	want := map[string]int{"a|1": 1, "b|2": 1, "a|3": 1}
	diffMultiset(t, want, tableValues(t, dir, "cpu"))
}

func TestHTTPCreateTableAndStats(t *testing.T) {
	_, srv, _ := newTestServer(t)
	code, body := post(t, srv.URL+"/v1/tables",
		`{"table":"t","columns":[{"name":"v","type":"int64"},{"name":"s","type":"string"}]}`)
	if code != http.StatusOK {
		t.Fatalf("create: %d %s", code, body)
	}
	// Appends must now conform to the declared schema.
	code, body = post(t, srv.URL+"/v1/append", `{"table":"t","rows":[{"v":1,"s":"x"}]}`)
	if code != http.StatusOK {
		t.Fatalf("conforming append: %d %s", code, body)
	}
	code, body = post(t, srv.URL+"/v1/append", `{"table":"t","rows":[{"v":1,"other":2}]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("nonconforming append: %d %s (want 400)", code, body)
	}

	code, body = get(t, srv.URL+"/v1/stats")
	if code != http.StatusOK || !strings.Contains(body, `"buffered_rows":1`) {
		t.Fatalf("stats: %d %s", code, body)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	_, srv, _ := newTestServer(t)
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"bad json", "/v1/append", `{"table":`, http.StatusBadRequest},
		{"empty rows", "/v1/append", `{"table":"t","rows":[]}`, http.StatusBadRequest},
		{"bad table name", "/v1/append", `{"table":"../evil","rows":[{"v":1}]}`, http.StatusBadRequest},
		{"bad column name", "/v1/append", `{"table":"t","rows":[{"a b":1}]}`, http.StatusBadRequest},
		{"unknown flush table", "/v1/flush/nosuch", ``, http.StatusNotFound},
		{"bad line protocol", "/v1/write", `cpu v=`, http.StatusBadRequest},
		{"empty write", "/v1/write", "\n\n", http.StatusBadRequest},
		{"bad create type", "/v1/tables", `{"table":"t","columns":[{"name":"v","type":"blob"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, srv.URL+tc.path, tc.body)
			if code != tc.want {
				t.Fatalf("%s: %d %s (want %d)", tc.path, code, body, tc.want)
			}
			if !strings.Contains(body, `"error"`) {
				t.Fatalf("error body missing: %s", body)
			}
		})
	}
	// Wrong method on a POST-only route.
	code, _ := get(t, srv.URL+"/v1/append")
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/append: %d, want 405", code)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	_, srv, _ := newTestServer(t)
	if code, body := get(t, srv.URL+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	post(t, srv.URL+"/v1/append", `{"table":"t","rows":[{"v":1}]}`)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"btringest_appends_total 1",
		"btringest_wal_records_total 1",
		`btringest_http_requests_total{route="/v1/append"} 1`,
		"btringest_append_duration_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
