package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"btrblocks"
)

// TestChaosKillTornWrite is the acceptance gate for the ingestion WAL:
// across 120 seeded iterations it appends random batches, crashes the
// service at a random point (mid-buffer, mid-flush-cycle, sometimes
// after partial flushes or a compaction), injects a torn write onto the
// active WAL segment in most iterations, reopens, and requires that the
// published chunks decode to EXACTLY the acked row multiset — zero
// acked-row loss, zero duplication — with every published file passing
// Verify. Torn injections model an in-flight (never acked) record, so
// they must contribute nothing.
func TestChaosKillTornWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is slow; skipped in -short")
	}
	const seeds = 120
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			chaosIteration(t, int64(seed))
		})
	}
}

// tornWrites are the tail corruptions injected after a crash. Each
// models a record that was being written when the process died: it was
// never acked, so replay must discard it and everything it damaged must
// be limited to itself.
var tornWrites = []func(r *rand.Rand, b []byte) []byte{
	// Bare tag, header cut off.
	func(r *rand.Rand, b []byte) []byte { return append(b, walRecTag) },
	// Full header promising more payload than exists.
	func(r *rand.Rand, b []byte) []byte {
		b = append(b, walRecTag)
		b = binary.LittleEndian.AppendUint32(b, uint32(1000+r.Intn(100000)))
		b = binary.LittleEndian.AppendUint32(b, r.Uint32())
		n := r.Intn(40)
		for i := 0; i < n; i++ {
			b = append(b, byte(r.Intn(256)))
		}
		return b
	},
	// Complete frame with a corrupted checksum.
	func(r *rand.Rand, b []byte) []byte {
		payload := encodeWALPayload(uint64(r.Int63()), "t", testChunk(int64(r.Intn(1000))))
		b = append(b, walRecTag)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli)^0xBAD)
		return append(b, payload...)
	},
	// Random garbage bytes.
	func(r *rand.Rand, b []byte) []byte {
		n := 1 + r.Intn(64)
		for i := 0; i < n; i++ {
			b = append(b, byte(r.Intn(256)))
		}
		return b
	},
	// Valid frame truncated partway through its payload.
	func(r *rand.Rand, b []byte) []byte {
		payload := encodeWALPayload(uint64(r.Int63()), "t", testChunk(int64(r.Intn(1000))))
		b = append(b, walRecTag)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
		return append(b, payload[:1+r.Intn(len(payload)-1)]...)
	},
}

func chaosIteration(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	cfg := Config{
		Dir:              dir,
		ChunkRows:        8 + r.Intn(40),
		FlushInterval:    -1,
		CompactMinChunks: 2,
		CompactInterval:  -1,
		TargetBlockRows:  256,
		Options:          &btrblocks.Options{BlockSize: 256},
	}
	tables := []string{"t"}
	if r.Intn(2) == 0 {
		tables = append(tables, "u")
	}

	acked := map[string]int{}
	next := int64(seed * 1_000_000)

	cycles := 2 + r.Intn(2)
	for c := 0; c < cycles; c++ {
		svc, err := Open(cfg)
		if err != nil {
			t.Fatalf("cycle %d: open: %v", c, err)
		}

		appends := 5 + r.Intn(20)
		for a := 0; a < appends; a++ {
			table := tables[r.Intn(len(tables))]
			rows := make([]int64, 1+r.Intn(5))
			for i := range rows {
				rows[i] = next
				next++
			}
			if _, err := svc.Append(table, testChunk(rows...)); err != nil {
				t.Fatalf("cycle %d append %d: %v", c, a, err)
			}
			// The ack happened (Append returned): the rows are now owed.
			for _, v := range rows {
				acked[fmt.Sprint(v)]++
			}
			switch r.Intn(10) {
			case 0:
				if err := svc.FlushTable(table); err != nil {
					t.Fatalf("cycle %d flush: %v", c, err)
				}
			case 1:
				if _, err := svc.CompactTable(table); err != nil {
					t.Fatalf("cycle %d compact: %v", c, err)
				}
			}
		}

		svc.crash()

		// Torn write on the active segment in ~2/3 of crashes.
		if r.Intn(3) != 0 {
			seg := activeChaosSegment(t, filepath.Join(dir, ".wal"))
			if seg != "" {
				data, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				tear := tornWrites[r.Intn(len(tornWrites))]
				if err := os.WriteFile(seg, tear(r, data), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Final recovery: everything acked must come back, nothing extra.
	svc, err := Open(cfg)
	if err != nil {
		t.Fatalf("final open: %v", err)
	}
	if err := svc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if r.Intn(2) == 0 {
		if err := svc.CompactNow(); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	got := map[string]int{}
	for _, table := range tables {
		for k, n := range tableValues(t, dir, table) {
			got[k] += n
		}
	}
	diffMultiset(t, acked, got)
	if t.Failed() {
		t.Logf("seed %d: acked %d distinct rows, recovered %d", seed, len(acked), len(got))
	}
}

// activeChaosSegment is activeSegment without the fatal on absence: a
// crash can land right after a checkpoint created a fresh empty dir.
func activeChaosSegment(t *testing.T, dir string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	best := ""
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "%08d.wal", &n); err == nil {
			if best == "" || e.Name() > best {
				best = e.Name()
			}
		}
	}
	if best == "" {
		return ""
	}
	return filepath.Join(dir, best)
}
