package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"btrblocks"
)

// Sentinel errors of the ingest validation layer; returned wrapped with
// context, so test with errors.Is. The HTTP layer maps them to 400.
var (
	// ErrSchema is returned when a batch does not match the table's
	// registered schema (column set, order, or types).
	ErrSchema = errors.New("ingest: batch does not match table schema")
	// ErrBadValue is returned when a row value cannot be represented in
	// its column's type (e.g. a fractional number in an integer column).
	ErrBadValue = errors.New("ingest: value does not fit column type")
	// ErrBadName is returned for table or column names outside
	// [A-Za-z0-9_.-] — names become file paths, so they are restricted.
	ErrBadName = errors.New("ingest: invalid table or column name")
	// ErrEmptyBatch is returned for appends with no rows.
	ErrEmptyBatch = errors.New("ingest: empty batch")
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// validName reports whether s is safe to embed in a file name.
func validName(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}

// ColumnSpec is one column of a table schema.
type ColumnSpec struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// parseType maps the wire type names to btrblocks types.
func parseType(s string) (btrblocks.Type, error) {
	switch strings.ToLower(s) {
	case "int", "int32", "integer":
		return btrblocks.TypeInt, nil
	case "int64", "bigint":
		return btrblocks.TypeInt64, nil
	case "double", "float", "float64":
		return btrblocks.TypeDouble, nil
	case "string", "text":
		return btrblocks.TypeString, nil
	}
	return 0, fmt.Errorf("%w: unknown type %q", ErrSchema, s)
}

// typeName is the inverse of parseType, used by markers and stats.
func typeName(t btrblocks.Type) string {
	switch t {
	case btrblocks.TypeInt:
		return "int"
	case btrblocks.TypeInt64:
		return "int64"
	case btrblocks.TypeDouble:
		return "double"
	case btrblocks.TypeString:
		return "string"
	}
	return "invalid"
}

// schemaOf extracts the name/type prototypes of a chunk's columns.
func schemaOf(chunk *btrblocks.Chunk) []btrblocks.Column {
	out := make([]btrblocks.Column, len(chunk.Columns))
	for i := range chunk.Columns {
		out[i] = btrblocks.Column{Name: chunk.Columns[i].Name, Type: chunk.Columns[i].Type}
	}
	return out
}

// schemaMatches reports whether a batch's columns equal the registered
// schema in count, order, name and type.
func schemaMatches(schema []btrblocks.Column, chunk *btrblocks.Chunk) error {
	if len(chunk.Columns) != len(schema) {
		return fmt.Errorf("%w: batch has %d columns, table has %d",
			ErrSchema, len(chunk.Columns), len(schema))
	}
	for i := range schema {
		if chunk.Columns[i].Name != schema[i].Name || chunk.Columns[i].Type != schema[i].Type {
			return fmt.Errorf("%w: column %d is %s %s, table has %s %s",
				ErrSchema, i, chunk.Columns[i].Name, chunk.Columns[i].Type,
				schema[i].Name, schema[i].Type)
		}
	}
	return nil
}

// appendChunk appends src's rows onto dst (equal schemas assumed
// validated). dst's columns grow in place; NULL positions are rebased by
// dst's current row count.
func appendChunk(dst, src *btrblocks.Chunk) {
	base := dst.NumRows()
	rows := src.NumRows()
	for i := range src.Columns {
		s := &src.Columns[i]
		d := &dst.Columns[i]
		switch s.Type {
		case btrblocks.TypeInt:
			d.Ints = append(d.Ints, s.Ints...)
		case btrblocks.TypeInt64:
			d.Ints64 = append(d.Ints64, s.Ints64...)
		case btrblocks.TypeDouble:
			d.Doubles = append(d.Doubles, s.Doubles...)
		case btrblocks.TypeString:
			for r := 0; r < rows; r++ {
				d.Strings = d.Strings.AppendBytes(s.Strings.View(r))
			}
		}
		s.Nulls.ForEachNull(func(p int) bool {
			if d.Nulls == nil {
				d.Nulls = btrblocks.NewNullMask()
			}
			d.Nulls.SetNull(base + p)
			return true
		})
	}
}

// emptyChunkFor builds a zero-row chunk with the given schema, ready to
// accumulate appends.
func emptyChunkFor(schema []btrblocks.Column) btrblocks.Chunk {
	cols := make([]btrblocks.Column, len(schema))
	for i := range schema {
		cols[i] = btrblocks.Column{Name: schema[i].Name, Type: schema[i].Type}
	}
	return btrblocks.Chunk{Columns: cols}
}

// jsonAppendRequest is the body of POST /v1/append: row objects keyed by
// column name. Missing keys become NULL; unknown keys are rejected.
type jsonAppendRequest struct {
	Table string                       `json:"table"`
	Rows  []map[string]json.RawMessage `json:"rows"`
}

// inferSchemaJSON derives a schema from the first batch for a table that
// was not explicitly created: column names are the union of row keys in
// sorted order; types come from the first non-null value per column.
// Integral JSON numbers infer int64, fractional ones double.
func inferSchemaJSON(rows []map[string]json.RawMessage) ([]btrblocks.Column, error) {
	keys := map[string]bool{}
	for _, row := range rows {
		for k := range row {
			keys[k] = true
		}
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	schema := make([]btrblocks.Column, 0, len(names))
	for _, name := range names {
		if !validName(name) {
			return nil, fmt.Errorf("%w: column %q", ErrBadName, name)
		}
		t, err := inferColumnType(rows, name)
		if err != nil {
			return nil, err
		}
		schema = append(schema, btrblocks.Column{Name: name, Type: t})
	}
	return schema, nil
}

func inferColumnType(rows []map[string]json.RawMessage, name string) (btrblocks.Type, error) {
	for _, row := range rows {
		raw, ok := row[name]
		if !ok || isJSONNull(raw) {
			continue
		}
		s := strings.TrimSpace(string(raw))
		if len(s) > 0 && s[0] == '"' {
			return btrblocks.TypeString, nil
		}
		if _, err := strconv.ParseInt(s, 10, 64); err == nil {
			return btrblocks.TypeInt64, nil
		}
		if _, err := strconv.ParseFloat(s, 64); err == nil {
			return btrblocks.TypeDouble, nil
		}
		return 0, fmt.Errorf("%w: column %q value %s", ErrBadValue, name, s)
	}
	return 0, fmt.Errorf("%w: column %q has no non-null value to infer a type from (create the table explicitly)", ErrSchema, name)
}

func isJSONNull(raw json.RawMessage) bool {
	return len(raw) == 0 || strings.TrimSpace(string(raw)) == "null"
}

// chunkFromJSONRows converts row objects into a columnar chunk matching
// schema. Missing keys and explicit nulls set the NULL mask; unknown
// keys and type mismatches are errors.
func chunkFromJSONRows(schema []btrblocks.Column, rows []map[string]json.RawMessage) (btrblocks.Chunk, error) {
	chunk := emptyChunkFor(schema)
	known := make(map[string]bool, len(schema))
	for i := range schema {
		known[schema[i].Name] = true
	}
	for r, row := range rows {
		for k := range row {
			if !known[k] {
				return chunk, fmt.Errorf("%w: row %d has unknown column %q", ErrSchema, r, k)
			}
		}
		for i := range chunk.Columns {
			col := &chunk.Columns[i]
			raw, ok := row[col.Name]
			if !ok || isJSONNull(raw) {
				setNullRow(col, r)
				continue
			}
			if err := appendJSONValue(col, raw); err != nil {
				return chunk, fmt.Errorf("row %d column %q: %w", r, col.Name, err)
			}
		}
	}
	return chunk, nil
}

// setNullRow appends a NULL slot (zero value + mask bit) at row r.
func setNullRow(col *btrblocks.Column, r int) {
	switch col.Type {
	case btrblocks.TypeInt:
		col.Ints = append(col.Ints, 0)
	case btrblocks.TypeInt64:
		col.Ints64 = append(col.Ints64, 0)
	case btrblocks.TypeDouble:
		col.Doubles = append(col.Doubles, 0)
	case btrblocks.TypeString:
		col.Strings = col.Strings.Append("")
	}
	if col.Nulls == nil {
		col.Nulls = btrblocks.NewNullMask()
	}
	col.Nulls.SetNull(r)
}

func appendJSONValue(col *btrblocks.Column, raw json.RawMessage) error {
	s := strings.TrimSpace(string(raw))
	switch col.Type {
	case btrblocks.TypeInt:
		v, err := strconv.ParseInt(s, 10, 32)
		if err != nil {
			return fmt.Errorf("%w: %s as int32", ErrBadValue, s)
		}
		col.Ints = append(col.Ints, int32(v))
	case btrblocks.TypeInt64:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("%w: %s as int64", ErrBadValue, s)
		}
		col.Ints64 = append(col.Ints64, v)
	case btrblocks.TypeDouble:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("%w: %s as double", ErrBadValue, s)
		}
		col.Doubles = append(col.Doubles, v)
	case btrblocks.TypeString:
		var v string
		if err := json.Unmarshal(raw, &v); err != nil {
			return fmt.Errorf("%w: %s as string", ErrBadValue, s)
		}
		col.Strings = col.Strings.Append(v)
	}
	return nil
}

// parseLineProtocol parses the text/plain append format: one row per
// line, `table field=value,field=value,...`. Value syntax: `123i` is a
// 64-bit integer, a bare number is a double, and `"..."` (with \" and
// \\ escapes) is a string. Blank lines and #-comments are skipped.
// All lines must target the same table (one batch, one WAL record).
func parseLineProtocol(body string) (table string, rows []map[string]json.RawMessage, err error) {
	for ln, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.IndexByte(line, ' ')
		if sp <= 0 {
			return "", nil, fmt.Errorf("line %d: want `table field=value,...`", ln+1)
		}
		t := line[:sp]
		if table == "" {
			table = t
		} else if t != table {
			return "", nil, fmt.Errorf("line %d: mixed tables %q and %q in one batch", ln+1, table, t)
		}
		row, err := parseLineFields(line[sp+1:])
		if err != nil {
			return "", nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		rows = append(rows, row)
	}
	if table == "" {
		return "", nil, ErrEmptyBatch
	}
	return table, rows, nil
}

// parseLineFields splits `a=1i,b=2.5,c="x,y"` respecting quoted commas.
func parseLineFields(s string) (map[string]json.RawMessage, error) {
	row := map[string]json.RawMessage{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("want field=value near %q", s)
		}
		name := s[:eq]
		s = s[eq+1:]
		var raw json.RawMessage
		if len(s) > 0 && s[0] == '"' {
			val, rest, err := scanQuoted(s)
			if err != nil {
				return nil, err
			}
			enc, _ := json.Marshal(val)
			raw = enc
			s = rest
		} else {
			end := strings.IndexByte(s, ',')
			tok := s
			if end >= 0 {
				tok = s[:end]
			}
			switch {
			case strings.HasSuffix(tok, "i"):
				n := strings.TrimSuffix(tok, "i")
				if _, err := strconv.ParseInt(n, 10, 64); err != nil {
					return nil, fmt.Errorf("bad integer %q", tok)
				}
				raw = json.RawMessage(n)
			case tok == "null":
				raw = json.RawMessage("null")
			default:
				if _, err := strconv.ParseFloat(tok, 64); err != nil {
					return nil, fmt.Errorf("bad number %q", tok)
				}
				raw = json.RawMessage(tok)
			}
			s = s[len(tok):]
		}
		if _, dup := row[name]; dup {
			return nil, fmt.Errorf("duplicate field %q", name)
		}
		row[name] = raw
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("want ',' near %q", s)
			}
			s = s[1:]
		}
	}
	if len(row) == 0 {
		return nil, fmt.Errorf("row has no fields")
	}
	return row, nil
}

// scanQuoted consumes a leading double-quoted string with \" and \\
// escapes and returns the unescaped value and the remainder.
func scanQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			i++
			b.WriteByte(s[i])
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated string in %q", s)
}
