package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"btrblocks"
	"btrblocks/internal/obs"
)

// maxBodyBytes bounds an append request body.
const maxBodyBytes = 256 << 20

// Schema returns the registered schema of a table.
func (s *Service) Schema(table string) ([]btrblocks.Column, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tables[table]
	if ts == nil {
		return nil, false
	}
	return ts.schema, true
}

// NewHandler wires the ingestion HTTP API around a Service:
//
//	POST /v1/append          JSON rows: {"table":"t","rows":[{"a":1},...]}
//	POST /v1/write           line protocol: `t a=1i,b=2.5,c="s"` per line
//	POST /v1/tables          create table: {"table":"t","columns":[{"name","type"},...]}
//	GET  /v1/tables          table stats
//	POST /v1/flush           flush all buffers (or /v1/flush/{table})
//	POST /v1/compact         run compaction now
//	GET  /v1/stats           same as GET /v1/tables
//	GET  /v1/spans           retained spans (when recording is enabled)
//	GET  /healthz            liveness
//	GET  /metrics            Prometheus text
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	h := &handler{svc: svc}
	mux.HandleFunc("POST /v1/append", h.route("/v1/append", h.appendJSON))
	mux.HandleFunc("POST /v1/write", h.route("/v1/write", h.appendLines))
	mux.HandleFunc("POST /v1/tables", h.route("/v1/tables", h.createTable))
	mux.HandleFunc("GET /v1/tables", h.route("/v1/tables", h.stats))
	mux.HandleFunc("GET /v1/stats", h.route("/v1/stats", h.stats))
	mux.HandleFunc("POST /v1/flush", h.route("/v1/flush", h.flushAll))
	mux.HandleFunc("POST /v1/flush/{table}", h.route("/v1/flush", h.flushTable))
	mux.HandleFunc("POST /v1/compact", h.route("/v1/compact", h.compact))
	mux.HandleFunc("GET /v1/spans", h.route("/v1/spans", h.spans))
	mux.HandleFunc("GET /healthz", h.route("/healthz", h.healthz))
	mux.HandleFunc("GET /metrics", h.route("/metrics", h.metrics))
	return mux
}

type handler struct {
	svc *Service
}

// httpError carries an explicit status through the handler plumbing.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

// route wraps a handler with metrics, tracing, and uniform error
// rendering. The root span continues an inbound traceparent when the
// caller sent one; the inbound X-Request-ID is reused rather than
// re-minted so logs on both sides of the process boundary share one ID.
func (h *handler) route(name string, fn func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rm := h.svc.met.Route(name)
		rm.Requests.Add(1)
		start := time.Now()
		rid := r.Header.Get(obs.RequestIDHeader)
		if rid == "" {
			rid = obs.NewRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), rid)
		ctx, span := h.svc.Spans().StartRemote(ctx, "btringest"+name, r.Header.Get(obs.TraceparentHeader))
		span.SetAttr("request_id", rid)
		err := fn(w, r.WithContext(ctx))
		rm.Latency.Observe(time.Since(start))
		if err == nil {
			span.End()
			return
		}
		rm.Errors.Add(1)
		status := http.StatusInternalServerError
		var he *httpError
		switch {
		case errors.As(err, &he):
			status = he.status
		case errors.Is(err, ErrSchema), errors.Is(err, ErrBadValue),
			errors.Is(err, ErrBadName), errors.Is(err, ErrEmptyBatch):
			status = http.StatusBadRequest
		case isUnknownTable(err):
			status = http.StatusNotFound
		}
		span.SetAttrInt("status", int64(status))
		span.SetError(err)
		span.End()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
	}
}

func readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, fmt.Errorf("read body: %v", err)}
	}
	if len(body) > maxBodyBytes {
		return nil, &httpError{http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", maxBodyBytes)}
	}
	return body, nil
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// appendResult acknowledges a durable append.
type appendResult struct {
	Seq  uint64 `json:"seq"`
	Rows int    `json:"rows"`
}

func (h *handler) appendJSON(w http.ResponseWriter, r *http.Request) error {
	body, err := readBody(r)
	if err != nil {
		return err
	}
	var req jsonAppendRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return &httpError{http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err)}
	}
	if len(req.Rows) == 0 {
		return ErrEmptyBatch
	}
	return h.appendRows(w, r, req.Table, req.Rows)
}

func (h *handler) appendLines(w http.ResponseWriter, r *http.Request) error {
	body, err := readBody(r)
	if err != nil {
		return err
	}
	table, rows, err := parseLineProtocol(string(body))
	if err != nil {
		if errors.Is(err, ErrEmptyBatch) {
			return err
		}
		return &httpError{http.StatusBadRequest, err}
	}
	return h.appendRows(w, r, table, rows)
}

// appendRows resolves the schema (registered, or inferred on first
// contact), builds the columnar batch, and hands it to the service.
func (h *handler) appendRows(w http.ResponseWriter, r *http.Request, table string, rows []map[string]json.RawMessage) error {
	if !validName(table) {
		return fmt.Errorf("%w: table %q", ErrBadName, table)
	}
	schema, ok := h.svc.Schema(table)
	if !ok {
		var err error
		schema, err = inferSchemaJSON(rows)
		if err != nil {
			return err
		}
	}
	chunk, err := chunkFromJSONRows(schema, rows)
	if err != nil {
		return err
	}
	seq, err := h.svc.AppendContext(r.Context(), table, &chunk)
	if err != nil {
		return err
	}
	return writeJSON(w, appendResult{Seq: seq, Rows: chunk.NumRows()})
}

type createTableRequest struct {
	Table   string       `json:"table"`
	Columns []ColumnSpec `json:"columns"`
}

func (h *handler) createTable(w http.ResponseWriter, r *http.Request) error {
	body, err := readBody(r)
	if err != nil {
		return err
	}
	var req createTableRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return &httpError{http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err)}
	}
	if err := h.svc.CreateTable(req.Table, req.Columns); err != nil {
		return err
	}
	return writeJSON(w, map[string]string{"table": req.Table, "status": "ok"})
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, map[string]any{"tables": h.svc.Stats()})
}

func (h *handler) flushAll(w http.ResponseWriter, r *http.Request) error {
	if err := h.svc.FlushAllContext(r.Context()); err != nil {
		return err
	}
	return writeJSON(w, map[string]string{"status": "flushed"})
}

func (h *handler) flushTable(w http.ResponseWriter, r *http.Request) error {
	table := strings.TrimSpace(r.PathValue("table"))
	if err := h.svc.FlushTableContext(r.Context(), table); err != nil {
		return err
	}
	return writeJSON(w, map[string]string{"status": "flushed", "table": table})
}

func (h *handler) compact(w http.ResponseWriter, r *http.Request) error {
	if err := h.svc.CompactNow(); err != nil {
		return err
	}
	return writeJSON(w, map[string]string{"status": "compacted"})
}

// spans serves GET /v1/spans: the retained spans as a versioned
// SpanSet, optionally filtered by ?trace=TRACE_ID and ?min_dur=DURATION
// (a Go duration literal like 5ms). 404 when span recording is off, so
// operators can tell "disabled" from "nothing recorded".
func (h *handler) spans(w http.ResponseWriter, r *http.Request) error {
	rec := h.svc.Spans()
	if !rec.Enabled() {
		return &httpError{http.StatusNotFound, errors.New("span recording disabled")}
	}
	var f obs.SpanFilter
	q := r.URL.Query()
	f.TraceID = q.Get("trace")
	if v := q.Get("min_dur"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return &httpError{http.StatusBadRequest, fmt.Errorf("bad min_dur parameter %q", v)}
		}
		f.MinDuration = d
	}
	return writeJSON(w, rec.Snapshot(f))
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, err := io.WriteString(w, "ok\n")
	return err
}

func (h *handler) metrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := h.svc.met.WriteTo(w); err != nil {
		return err
	}
	if rec := h.svc.Spans(); rec.Enabled() {
		rec.WritePromLines(w, "btringest")
	}
	return nil
}
