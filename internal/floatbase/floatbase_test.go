package floatbase

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

type codec struct {
	name   string
	encode func([]byte, []float64) []byte
	decode func([]float64, []byte) ([]float64, error)
}

var codecs = []codec{
	{"gorilla", GorillaEncode, GorillaDecode},
	{"chimp", ChimpEncode, ChimpDecode},
	{"chimp128", Chimp128Encode, Chimp128Decode},
	{"fpc", FPCEncode, FPCDecode},
}

func checkRoundTrip(t *testing.T, c codec, src []float64) int {
	t.Helper()
	enc := c.encode(nil, src)
	dec, err := c.decode(nil, enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", c.name, err)
	}
	if len(dec) != len(src) {
		t.Fatalf("%s: got %d values, want %d", c.name, len(dec), len(src))
	}
	for i := range src {
		if math.Float64bits(dec[i]) != math.Float64bits(src[i]) {
			t.Fatalf("%s: value %d: %v != %v", c.name, i, dec[i], src[i])
		}
	}
	return len(enc)
}

func TestRoundTripAllCodecs(t *testing.T) {
	inputs := [][]float64{
		nil,
		{0},
		{1.5},
		{1.5, 1.5, 1.5, 1.5},
		{3.25, 0.99, -6.425, 5.5e-42},
		{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)},
		{math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64},
	}
	rng := rand.New(rand.NewSource(31))
	walk := make([]float64, 10000)
	v := 100.0
	for i := range walk {
		v += rng.Float64() - 0.5
		walk[i] = v
	}
	inputs = append(inputs, walk)

	for _, c := range codecs {
		for _, src := range inputs {
			checkRoundTrip(t, c, src)
		}
	}
}

func TestTimeSeriesCompress(t *testing.T) {
	// Slowly changing series: every XOR codec should beat raw storage.
	src := make([]float64, 10000)
	for i := range src {
		src[i] = 20 + 0.01*float64(i%100)
	}
	raw := len(src) * 8
	for _, c := range codecs {
		size := checkRoundTrip(t, c, src)
		if size >= raw {
			t.Errorf("%s: %d bytes >= raw %d on a compressible series", c.name, size, raw)
		}
	}
}

func TestChimp128BeatsChimpOnRecurringValues(t *testing.T) {
	// A small set of recurring values separated by noise: the 128-value
	// window is exactly what lets Chimp128 win here.
	rng := rand.New(rand.NewSource(32))
	vals := []float64{83.2833, 3.05, 9.5999, 17.25, 0.0}
	src := make([]float64, 20000)
	for i := range src {
		if i%3 == 0 {
			src[i] = rng.NormFloat64() * 1000
		} else {
			src[i] = vals[rng.Intn(len(vals))]
		}
	}
	chimpSize := checkRoundTrip(t, codecs[1], src)
	c128Size := checkRoundTrip(t, codecs[2], src)
	if c128Size >= chimpSize {
		t.Fatalf("chimp128 (%d) should beat chimp (%d) on recurring values", c128Size, chimpSize)
	}
}

func TestTruncatedStreams(t *testing.T) {
	src := []float64{1.5, 2.5, 3.5, 2.5, 900.125}
	for _, c := range codecs {
		enc := c.encode(nil, src)
		for cut := 0; cut < 4; cut++ {
			if _, err := c.decode(nil, enc[:cut]); err == nil {
				t.Fatalf("%s: missing header not detected at cut %d", c.name, cut)
			}
		}
		// Deep truncations must error, not panic or hang (a few byte
		// positions may decode fewer values legally only if the count
		// cannot be satisfied, which must be an error).
		for cut := 4; cut < len(enc); cut++ {
			if _, err := c.decode(nil, enc[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d not detected", c.name, cut)
			}
		}
	}
}

func TestQuickAllCodecs(t *testing.T) {
	for _, c := range codecs {
		c := c
		f := func(raw []uint64) bool {
			src := make([]float64, len(raw))
			for i, b := range raw {
				src[i] = math.Float64frombits(b)
			}
			enc := c.encode(nil, src)
			dec, err := c.decode(nil, enc)
			if err != nil || len(dec) != len(src) {
				return false
			}
			for i := range src {
				if math.Float64bits(dec[i]) != math.Float64bits(src[i]) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	src := make([]float64, 64000)
	for i := range src {
		src[i] = float64(rng.Intn(100000)) / 100
	}
	for _, c := range codecs {
		b.Run(c.name, func(b *testing.B) {
			enc := c.encode(nil, src)
			dst := make([]float64, 0, len(src))
			b.SetBytes(int64(len(src) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				dst, err = c.decode(dst[:0], enc)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
