// Package floatbase implements the floating-point compression baselines the
// paper compares Pseudodecimal Encoding against in Table 3: Gorilla
// (Pelkonen et al. 2015), Chimp and Chimp128 (Liakos et al. 2022), and FPC
// (Burtscher & Ratanaworabhan 2007). All are lossless, bit-exact codecs for
// float64 streams.
package floatbase

import (
	"encoding/binary"
	"errors"
	"math"
	"math/bits"

	"btrblocks/internal/bitio"
)

// ErrCorrupt is returned for malformed streams.
var ErrCorrupt = errors.New("floatbase: corrupt stream")

func appendHeader(dst []byte, n int) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(n))
}

func readHeader(src []byte) (int, []byte, error) {
	if len(src) < 4 {
		return 0, nil, ErrCorrupt
	}
	return int(binary.LittleEndian.Uint32(src)), src[4:], nil
}

// --- Gorilla ---

// GorillaEncode compresses src with the Gorilla XOR scheme and appends the
// result (4-byte count header + bit stream) to dst.
func GorillaEncode(dst []byte, src []float64) []byte {
	dst = appendHeader(dst, len(src))
	if len(src) == 0 {
		return dst
	}
	w := bitio.NewWriter(dst)
	prev := math.Float64bits(src[0])
	w.WriteBits(prev, 64)
	prevLead, prevTrail := uint(65), uint(65) // invalid: forces a new window
	for _, v := range src[1:] {
		cur := math.Float64bits(v)
		xor := prev ^ cur
		prev = cur
		if xor == 0 {
			w.WriteBit(0)
			continue
		}
		lead := uint(bits.LeadingZeros64(xor))
		if lead > 31 {
			lead = 31
		}
		trail := uint(bits.TrailingZeros64(xor))
		if lead >= prevLead && trail >= prevTrail {
			// fits in the previous meaningful-bit window
			w.WriteBits(0b10, 2)
			w.WriteBits(xor>>prevTrail, 64-prevLead-prevTrail)
			continue
		}
		meaningful := 64 - lead - trail
		w.WriteBits(0b11, 2)
		w.WriteBits(uint64(lead), 5)
		w.WriteBits(uint64(meaningful-1), 6)
		w.WriteBits(xor>>trail, meaningful)
		prevLead, prevTrail = lead, trail
	}
	return w.Bytes()
}

// GorillaDecode decompresses a GorillaEncode stream, appending to dst.
func GorillaDecode(dst []float64, src []byte) ([]float64, error) {
	n, body, err := readHeader(src)
	if err != nil {
		return dst, err
	}
	if n == 0 {
		return dst, nil
	}
	r := bitio.NewReader(body)
	raw, err := r.ReadBits(64)
	if err != nil {
		return dst, err
	}
	dst = append(dst, math.Float64frombits(raw))
	prev := raw
	var lead, trail uint
	for i := 1; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return dst, err
		}
		if b == 0 {
			dst = append(dst, math.Float64frombits(prev))
			continue
		}
		b, err = r.ReadBit()
		if err != nil {
			return dst, err
		}
		if b == 1 {
			leadBits, err := r.ReadBits(5)
			if err != nil {
				return dst, err
			}
			mBits, err := r.ReadBits(6)
			if err != nil {
				return dst, err
			}
			lead = uint(leadBits)
			meaningful := uint(mBits) + 1
			if lead+meaningful > 64 {
				return dst, ErrCorrupt
			}
			trail = 64 - lead - meaningful
		}
		width := 64 - lead - trail
		xor, err := r.ReadBits(width)
		if err != nil {
			return dst, err
		}
		prev ^= xor << trail
		dst = append(dst, math.Float64frombits(prev))
	}
	return dst, nil
}

// --- Chimp ---

// chimpLeadRound quantizes a leading-zero count to the 8 representable
// values, and chimpLeadBits maps a 3-bit index back.
var chimpLeadBits = [8]uint{0, 8, 12, 16, 18, 20, 22, 24}

func chimpLeadIndex(lead uint) uint {
	switch {
	case lead >= 24:
		return 7
	case lead >= 22:
		return 6
	case lead >= 20:
		return 5
	case lead >= 18:
		return 4
	case lead >= 16:
		return 3
	case lead >= 12:
		return 2
	case lead >= 8:
		return 1
	default:
		return 0
	}
}

// ChimpEncode compresses src with the Chimp scheme.
func ChimpEncode(dst []byte, src []float64) []byte {
	dst = appendHeader(dst, len(src))
	if len(src) == 0 {
		return dst
	}
	w := bitio.NewWriter(dst)
	prev := math.Float64bits(src[0])
	w.WriteBits(prev, 64)
	prevLead := uint(65)
	for _, v := range src[1:] {
		cur := math.Float64bits(v)
		xor := prev ^ cur
		prev = cur
		if xor == 0 {
			w.WriteBits(0b00, 2)
			prevLead = 65
			continue
		}
		lead := chimpLeadBits[chimpLeadIndex(uint(bits.LeadingZeros64(xor)))]
		trail := uint(bits.TrailingZeros64(xor))
		if trail > 6 {
			// center-bits case: worth paying for an explicit trailing cut
			center := 64 - lead - trail
			w.WriteBits(0b01, 2)
			w.WriteBits(uint64(chimpLeadIndex(lead)), 3)
			w.WriteBits(uint64(center), 6)
			w.WriteBits(xor>>trail, center)
			prevLead = 65
			continue
		}
		if lead == prevLead {
			w.WriteBits(0b10, 2)
			w.WriteBits(xor, 64-lead)
			continue
		}
		w.WriteBits(0b11, 2)
		w.WriteBits(uint64(chimpLeadIndex(lead)), 3)
		w.WriteBits(xor, 64-lead)
		prevLead = lead
	}
	return w.Bytes()
}

// ChimpDecode decompresses a ChimpEncode stream, appending to dst.
func ChimpDecode(dst []float64, src []byte) ([]float64, error) {
	n, body, err := readHeader(src)
	if err != nil {
		return dst, err
	}
	if n == 0 {
		return dst, nil
	}
	r := bitio.NewReader(body)
	prev, err := r.ReadBits(64)
	if err != nil {
		return dst, err
	}
	dst = append(dst, math.Float64frombits(prev))
	prevLead := uint(65)
	for i := 1; i < n; i++ {
		flag, err := r.ReadBits(2)
		if err != nil {
			return dst, err
		}
		switch flag {
		case 0b00:
			prevLead = 65
		case 0b01:
			leadIdx, err := r.ReadBits(3)
			if err != nil {
				return dst, err
			}
			center, err := r.ReadBits(6)
			if err != nil {
				return dst, err
			}
			lead := chimpLeadBits[leadIdx]
			if lead+uint(center) > 64 {
				return dst, ErrCorrupt
			}
			trail := 64 - lead - uint(center)
			xor, err := r.ReadBits(uint(center))
			if err != nil {
				return dst, err
			}
			prev ^= xor << trail
			prevLead = 65
		case 0b10:
			if prevLead > 64 {
				return dst, ErrCorrupt
			}
			xor, err := r.ReadBits(64 - prevLead)
			if err != nil {
				return dst, err
			}
			prev ^= xor
		case 0b11:
			leadIdx, err := r.ReadBits(3)
			if err != nil {
				return dst, err
			}
			lead := chimpLeadBits[leadIdx]
			xor, err := r.ReadBits(64 - lead)
			if err != nil {
				return dst, err
			}
			prev ^= xor
			prevLead = lead
		}
		dst = append(dst, math.Float64frombits(prev))
	}
	return dst, nil
}

// --- Chimp128 ---

const (
	chimp128Window = 128
	chimp128Hash   = 1 << 14
)

func chimp128Key(bits uint64) uint {
	return uint((bits * 0x9E3779B97F4A7C15) >> 50)
}

// Chimp128Encode compresses src with a Chimp128-style scheme: each value may
// reference any of the previous 128 values (found through a hash of the
// value bits), trading 7 index bits for much shorter XOR residues on
// recurring values.
func Chimp128Encode(dst []byte, src []float64) []byte {
	dst = appendHeader(dst, len(src))
	if len(src) == 0 {
		return dst
	}
	w := bitio.NewWriter(dst)
	first := math.Float64bits(src[0])
	w.WriteBits(first, 64)

	window := make([]uint64, chimp128Window)
	indices := make([]int, chimp128Hash)
	for i := range indices {
		indices[i] = -1
	}
	window[0] = first
	indices[chimp128Key(first)] = 0
	prevLead := uint(65)

	for i := 1; i < len(src); i++ {
		cur := math.Float64bits(src[i])
		prev := window[(i-1)%chimp128Window]

		// candidate reference from the hash of the current value
		refIdx := i - 1
		if cand := indices[chimp128Key(cur)]; cand >= 0 && cand < i && i-cand <= chimp128Window {
			refIdx = cand
		}
		ref := window[refIdx%chimp128Window]
		xor := ref ^ cur
		refOff := uint64(refIdx % chimp128Window)

		if xor == 0 {
			w.WriteBits(0b00, 2)
			w.WriteBits(refOff, 7)
			prevLead = 65
		} else if trail := uint(bits.TrailingZeros64(xor)); trail > 6 {
			lead := chimpLeadBits[chimpLeadIndex(uint(bits.LeadingZeros64(xor)))]
			center := 64 - lead - trail
			w.WriteBits(0b01, 2)
			w.WriteBits(refOff, 7)
			w.WriteBits(uint64(chimpLeadIndex(lead)), 3)
			w.WriteBits(uint64(center), 6)
			w.WriteBits(xor>>trail, center)
			prevLead = 65
		} else {
			// fall back to chaining off the immediately previous value
			xor = prev ^ cur
			lead := chimpLeadBits[chimpLeadIndex(uint(bits.LeadingZeros64(xor)))]
			if lead == prevLead {
				w.WriteBits(0b10, 2)
				w.WriteBits(xor, 64-lead)
			} else {
				w.WriteBits(0b11, 2)
				w.WriteBits(uint64(chimpLeadIndex(lead)), 3)
				w.WriteBits(xor, 64-lead)
				prevLead = lead
			}
		}
		window[i%chimp128Window] = cur
		indices[chimp128Key(cur)] = i
	}
	return w.Bytes()
}

// Chimp128Decode decompresses a Chimp128Encode stream, appending to dst.
func Chimp128Decode(dst []float64, src []byte) ([]float64, error) {
	n, body, err := readHeader(src)
	if err != nil {
		return dst, err
	}
	if n == 0 {
		return dst, nil
	}
	r := bitio.NewReader(body)
	first, err := r.ReadBits(64)
	if err != nil {
		return dst, err
	}
	dst = append(dst, math.Float64frombits(first))
	window := make([]uint64, chimp128Window)
	window[0] = first
	prevLead := uint(65)

	for i := 1; i < n; i++ {
		flag, err := r.ReadBits(2)
		if err != nil {
			return dst, err
		}
		var cur uint64
		switch flag {
		case 0b00:
			off, err := r.ReadBits(7)
			if err != nil {
				return dst, err
			}
			cur = window[off]
			prevLead = 65
		case 0b01:
			off, err := r.ReadBits(7)
			if err != nil {
				return dst, err
			}
			leadIdx, err := r.ReadBits(3)
			if err != nil {
				return dst, err
			}
			center, err := r.ReadBits(6)
			if err != nil {
				return dst, err
			}
			lead := chimpLeadBits[leadIdx]
			if lead+uint(center) > 64 {
				return dst, ErrCorrupt
			}
			trail := 64 - lead - uint(center)
			xor, err := r.ReadBits(uint(center))
			if err != nil {
				return dst, err
			}
			cur = window[off] ^ (xor << trail)
			prevLead = 65
		case 0b10:
			if prevLead > 64 {
				return dst, ErrCorrupt
			}
			xor, err := r.ReadBits(64 - prevLead)
			if err != nil {
				return dst, err
			}
			cur = window[(i-1)%chimp128Window] ^ xor
		case 0b11:
			leadIdx, err := r.ReadBits(3)
			if err != nil {
				return dst, err
			}
			lead := chimpLeadBits[leadIdx]
			xor, err := r.ReadBits(64 - lead)
			if err != nil {
				return dst, err
			}
			cur = window[(i-1)%chimp128Window] ^ xor
			prevLead = lead
		}
		dst = append(dst, math.Float64frombits(cur))
		window[i%chimp128Window] = cur
	}
	return dst, nil
}

// --- FPC ---

const fpcTableBits = 16

// FPCEncode compresses src with the FPC scheme: two hash-based predictors
// (FCM and DFCM); each value stores which predictor was closer, the number
// of leading zero bytes of the XOR residue, and the remaining raw bytes.
func FPCEncode(dst []byte, src []float64) []byte {
	dst = appendHeader(dst, len(src))
	w := bitio.NewWriter(dst)
	var fcm, dfcm fpcPredictor
	dfcm.delta = true
	for _, v := range src {
		cur := math.Float64bits(v)
		p1 := fcm.predict()
		p2 := dfcm.predict()
		x1 := cur ^ p1
		x2 := cur ^ p2
		sel := uint64(0)
		xor := x1
		if bits.LeadingZeros64(x2) > bits.LeadingZeros64(x1) {
			sel, xor = 1, x2
		}
		lzb := uint(bits.LeadingZeros64(xor)) / 8
		w.WriteBits(sel, 1)
		w.WriteBits(uint64(lzb), 4)
		if lzb < 8 {
			w.WriteBits(xor, (8-lzb)*8)
		}
		fcm.update(cur)
		dfcm.update(cur)
	}
	return w.Bytes()
}

// FPCDecode decompresses an FPCEncode stream, appending to dst.
func FPCDecode(dst []float64, src []byte) ([]float64, error) {
	n, body, err := readHeader(src)
	if err != nil {
		return dst, err
	}
	r := bitio.NewReader(body)
	var fcm, dfcm fpcPredictor
	dfcm.delta = true
	for i := 0; i < n; i++ {
		sel, err := r.ReadBits(1)
		if err != nil {
			return dst, err
		}
		lzb, err := r.ReadBits(4)
		if err != nil {
			return dst, err
		}
		if lzb > 8 {
			return dst, ErrCorrupt
		}
		var xor uint64
		if lzb < 8 {
			xor, err = r.ReadBits((8 - uint(lzb)) * 8)
			if err != nil {
				return dst, err
			}
		}
		pred := fcm.predict()
		if sel == 1 {
			pred = dfcm.predict()
		}
		cur := pred ^ xor
		dst = append(dst, math.Float64frombits(cur))
		fcm.update(cur)
		dfcm.update(cur)
	}
	return dst, nil
}

// fpcPredictor implements both FCM (delta=false) and DFCM (delta=true).
type fpcPredictor struct {
	table [1 << fpcTableBits]uint64
	hash  uint
	last  uint64
	delta bool
}

func (p *fpcPredictor) predict() uint64 {
	v := p.table[p.hash]
	if p.delta {
		return v + p.last
	}
	return v
}

func (p *fpcPredictor) update(cur uint64) {
	if p.delta {
		d := cur - p.last
		p.table[p.hash] = d
		p.hash = ((p.hash << 2) ^ uint(d>>40)) & (1<<fpcTableBits - 1)
		p.last = cur
	} else {
		p.table[p.hash] = cur
		p.hash = ((p.hash << 6) ^ uint(cur>>48)) & (1<<fpcTableBits - 1)
	}
}
