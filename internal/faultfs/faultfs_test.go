package faultfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestReaderAtDeterministic(t *testing.T) {
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	cfg := Config{Seed: 7, BitFlip: 0.5, Truncate: 0.2, Err: 0.1}
	run := func() ([][]byte, []error) {
		r := NewReaderAt(bytes.NewReader(src), cfg)
		var outs [][]byte
		var errs []error
		for i := 0; i < 50; i++ {
			buf := make([]byte, 128)
			n, err := r.ReadAt(buf, int64(i*64))
			outs = append(outs, append([]byte(nil), buf[:n]...))
			errs = append(errs, err)
		}
		return outs, errs
	}
	o1, e1 := run()
	o2, e2 := run()
	for i := range o1 {
		if !bytes.Equal(o1[i], o2[i]) {
			t.Fatalf("op %d: outputs differ between identically-seeded runs", i)
		}
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("op %d: errors differ: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestReaderAtInjectsEachFaultClass(t *testing.T) {
	src := make([]byte, 1024)
	r := NewReaderAt(bytes.NewReader(src), Config{Seed: 1, BitFlip: 0.3, Truncate: 0.2, ShortRead: 0.2, Err: 0.2})
	sawErr, sawFlip, sawShort := false, false, false
	for i := 0; i < 200; i++ {
		buf := make([]byte, 256)
		n, err := r.ReadAt(buf, 0)
		switch {
		case errors.Is(err, ErrInjected):
			sawErr = true
		case err == io.ErrUnexpectedEOF && n < len(buf):
			sawShort = true
		case err == nil:
			for _, b := range buf[:n] {
				if b != 0 {
					sawFlip = true
				}
			}
		}
	}
	if !sawErr || !sawFlip || !sawShort {
		t.Fatalf("fault classes seen: err=%v flip=%v short=%v", sawErr, sawFlip, sawShort)
	}
	st := r.Stats()
	if st.Ops != 200 || st.BitFlips == 0 || st.Errors == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReaderAtZeroConfigIsTransparent(t *testing.T) {
	src := []byte("hello, world")
	r := NewReaderAt(bytes.NewReader(src), Config{})
	buf := make([]byte, len(src))
	n, err := r.ReadAt(buf, 0)
	if err != nil || n != len(src) || !bytes.Equal(buf, src) {
		t.Fatalf("n=%d err=%v buf=%q", n, err, buf)
	}
}

func TestWriterTornWrite(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out, Config{Seed: 3, Truncate: 1})
	payload := make([]byte, 1000)
	n, err := w.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("torn write must report success: n=%d err=%v", n, err)
	}
	if out.Len() >= len(payload) {
		t.Fatalf("expected dropped tail, underlying got %d bytes", out.Len())
	}
}

func TestRoundTripperFlipsBody(t *testing.T) {
	const body = "0123456789abcdef0123456789abcdef"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer srv.Close()
	client := &http.Client{Transport: NewRoundTripper(srv.Client().Transport, Config{Seed: 5, BitFlip: 1})}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == body {
		t.Fatal("body arrived intact despite BitFlip=1")
	}
	if len(got) != len(body) {
		t.Fatalf("flip must not change length: got %d, want %d", len(got), len(body))
	}
}

func TestRoundTripperErrRate(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	client := &http.Client{Transport: NewRoundTripper(srv.Client().Transport, Config{Seed: 9, Err: 1})}
	_, err := client.Get(srv.URL)
	if err == nil || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("expected injected error, got %v", err)
	}
}

func TestCorruptOneByteAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 256)
	for i := 0; i < 1000; i++ {
		orig := append([]byte(nil), data...)
		off := CorruptOneByte(data, 10, 200, rng)
		if off < 10 || off >= 200 {
			t.Fatalf("offset %d outside [10,200)", off)
		}
		if data[off] == orig[off] {
			t.Fatalf("byte at %d unchanged", off)
		}
		copy(data, orig)
	}
	if CorruptOneByte(data, 5, 5, rng) != -1 {
		t.Fatal("empty range must return -1")
	}
}
