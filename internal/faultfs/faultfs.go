// Package faultfs provides seeded, deterministic fault injection for
// integrity testing: wrappers around io.ReaderAt, io.Writer and
// http.RoundTripper that flip bits, truncate data, return short reads,
// inject errors, and add latency at configurable rates. The same seed
// always produces the same fault sequence, so chaos tests are
// reproducible bit for bit.
package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrInjected is the error returned by injected failures. Test with
// errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

// Config sets per-operation fault rates. All probabilities are in
// [0, 1]; zero disables that fault class. The zero Config injects
// nothing and adds no latency.
type Config struct {
	// Seed makes the fault sequence deterministic. Two wrappers built
	// with the same seed and config inject identical faults.
	Seed int64
	// BitFlip is the probability that an operation's data has one
	// random bit flipped.
	BitFlip float64
	// Truncate is the probability that an operation's data is cut short
	// at a random point (reads then return io.ErrUnexpectedEOF; writes
	// silently drop the tail, as a torn write would).
	Truncate float64
	// ShortRead is the probability that a read returns fewer bytes than
	// requested with io.ErrUnexpectedEOF, as an interrupted read would.
	ShortRead float64
	// Err is the probability that an operation fails outright with
	// ErrInjected.
	Err float64
	// Latency is added to every operation.
	Latency time.Duration
}

// Stats counts the faults a wrapper has injected.
type Stats struct {
	Ops         int64
	BitFlips    int64
	Truncations int64
	ShortReads  int64
	Errors      int64
}

// injector is the shared seeded fault source behind every wrapper.
type injector struct {
	cfg   Config
	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

func newInjector(cfg Config) *injector {
	return &injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// decide rolls the dice for one operation and returns the faults to
// apply. All randomness happens here, under the lock, so concurrent
// callers still consume a single deterministic sequence.
type decision struct {
	err      bool
	bitFlip  bool
	truncate bool
	short    bool
	// cut is the fraction (0,1) at which truncation/short read cuts the
	// data; flipByte/flipBit locate the bit flip.
	cut      float64
	flipByte float64
	flipBit  uint
}

func (in *injector) decide() decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Ops++
	d := decision{
		cut:      in.rng.Float64(),
		flipByte: in.rng.Float64(),
		flipBit:  uint(in.rng.Intn(8)),
	}
	if in.cfg.Err > 0 && in.rng.Float64() < in.cfg.Err {
		d.err = true
		in.stats.Errors++
		return d
	}
	if in.cfg.BitFlip > 0 && in.rng.Float64() < in.cfg.BitFlip {
		d.bitFlip = true
		in.stats.BitFlips++
	}
	if in.cfg.Truncate > 0 && in.rng.Float64() < in.cfg.Truncate {
		d.truncate = true
		in.stats.Truncations++
	}
	if in.cfg.ShortRead > 0 && in.rng.Float64() < in.cfg.ShortRead {
		d.short = true
		in.stats.ShortReads++
	}
	return d
}

func (in *injector) sleep() {
	if in.cfg.Latency > 0 {
		time.Sleep(in.cfg.Latency)
	}
}

// Stats returns a snapshot of the faults injected so far.
func (in *injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// apply mutates p in place according to the decision and returns the
// usable length (≤ len(p)) and the error to surface.
func (d decision) apply(p []byte, short bool) (int, error) {
	n := len(p)
	if d.bitFlip && n > 0 {
		i := int(d.flipByte * float64(n))
		if i >= n {
			i = n - 1
		}
		p[i] ^= 1 << d.flipBit
	}
	if d.truncate && n > 0 {
		n = int(d.cut * float64(n))
		return n, io.ErrUnexpectedEOF
	}
	if short && d.short && n > 0 {
		n = int(d.cut * float64(n))
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

// ReaderAt wraps an io.ReaderAt with fault injection.
type ReaderAt struct {
	r io.ReaderAt
	*injector
}

// NewReaderAt wraps r.
func NewReaderAt(r io.ReaderAt, cfg Config) *ReaderAt {
	return &ReaderAt{r: r, injector: newInjector(cfg)}
}

// ReadAt reads from the underlying reader, then applies the configured
// faults to the returned bytes.
func (f *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	f.sleep()
	d := f.decide()
	if d.err {
		return 0, fmt.Errorf("%w: read at %d", ErrInjected, off)
	}
	n, err := f.r.ReadAt(p, off)
	if err != nil {
		return n, err
	}
	return d.apply(p[:n], true)
}

// Writer wraps an io.Writer with fault injection: written bytes may be
// bit-flipped or silently truncated (a torn write), and whole writes may
// fail with ErrInjected.
type Writer struct {
	w io.Writer
	*injector
}

// NewWriter wraps w.
func NewWriter(w io.Writer, cfg Config) *Writer {
	return &Writer{w: w, injector: newInjector(cfg)}
}

// Write applies the configured faults to p's copy and forwards it. A
// truncating fault still reports len(p) written — like a torn write, the
// caller does not find out.
func (f *Writer) Write(p []byte) (int, error) {
	f.sleep()
	d := f.decide()
	if d.err {
		return 0, fmt.Errorf("%w: write of %d bytes", ErrInjected, len(p))
	}
	buf := append([]byte(nil), p...)
	n, _ := d.apply(buf, false)
	if _, err := f.w.Write(buf[:n]); err != nil {
		return 0, err
	}
	return len(p), nil
}

// RoundTripper wraps an http.RoundTripper with fault injection on the
// response path: whole requests may fail with ErrInjected, responses may
// arrive late, and response bodies may be bit-flipped or truncated —
// exactly what a block-serving client has to survive.
type RoundTripper struct {
	rt http.RoundTripper
	*injector
}

// NewRoundTripper wraps rt (http.DefaultTransport if nil).
func NewRoundTripper(rt http.RoundTripper, cfg Config) *RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &RoundTripper{rt: rt, injector: newInjector(cfg)}
}

// RoundTrip forwards the request and applies the configured faults to
// the response body.
func (f *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	f.sleep()
	d := f.decide()
	if d.err {
		return nil, fmt.Errorf("%w: %s %s", ErrInjected, req.Method, req.URL.Path)
	}
	resp, err := f.rt.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if resp.Body == nil || (!d.bitFlip && !d.truncate) {
		return resp, nil
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	n, _ := d.apply(body, false)
	resp.Body = io.NopCloser(bytes.NewReader(body[:n]))
	// Keep Content-Length honest for truncations so the client's HTTP
	// layer doesn't mask the fault; a checksum must catch the flip.
	resp.ContentLength = int64(n)
	resp.Header.Set("Content-Length", fmt.Sprint(n))
	return resp, nil
}

// CorruptOneByte flips one random nonzero bit pattern in one random byte
// of data[lo:hi), using rng, and returns the offset it damaged. It is
// the shared helper behind "flip exactly one byte and assert detection"
// chaos tests.
func CorruptOneByte(data []byte, lo, hi int, rng *rand.Rand) int {
	if hi > len(data) {
		hi = len(data)
	}
	if lo < 0 || lo >= hi {
		return -1
	}
	off := lo + rng.Intn(hi-lo)
	mask := byte(1 + rng.Intn(255)) // never zero: the byte always changes
	data[off] ^= mask
	return off
}
