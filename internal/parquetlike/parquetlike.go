// Package parquetlike implements the Parquet-like baseline format the
// paper compares against. It reproduces the encoding decisions §2.1
// attributes to Parquet: per-rowgroup column chunks, a fixed
// dictionary-or-plain encoding choice with fallback when the dictionary
// grows too large, the RLE/bit-packing hybrid for dictionary codes, and an
// optional general-purpose compression pass (Snappy, LZ4 or the
// heavyweight codec) over each column chunk — the "Parquet+X" variants of
// the evaluation.
package parquetlike

import (
	"encoding/binary"
	"errors"
	"math"

	"btrblocks"
	"btrblocks/coldata"
	"btrblocks/internal/bitpack"
	"btrblocks/internal/codec"
)

// DefaultRowGroupSize matches the paper's Parquet configuration (2^17).
const DefaultRowGroupSize = 1 << 17

// maxDictSize is the dictionary fallback threshold: like Parquet's default
// writer, the encoder abandons dictionary encoding when the dictionary
// exceeds this many entries and leaves the chunk plain.
const maxDictSize = 1 << 16

// ErrCorrupt is returned for malformed files.
var ErrCorrupt = errors.New("parquetlike: corrupt file")

const (
	encPlain = 0
	encDict  = 1
)

// Options configures the baseline writer.
type Options struct {
	RowGroupSize int
	Codec        codec.Kind
}

func (o *Options) rowGroup() int {
	if o == nil || o.RowGroupSize <= 0 {
		return DefaultRowGroupSize
	}
	return o.RowGroupSize
}

func (o *Options) codec() codec.Kind {
	if o == nil {
		return codec.None
	}
	return o.Codec
}

// CompressColumn writes one column as a sequence of rowgroup chunks.
// Layout: codec:u8 type:u8 groupCount:u32, then per group
// rows:u32 chunkLen:u32 chunk (chunk optionally codec-compressed).
func CompressColumn(col btrblocks.Column, opt *Options) ([]byte, error) {
	rg := opt.rowGroup()
	k := opt.codec()
	n := col.Len()
	var out []byte
	out = append(out, byte(k), byte(col.Type))
	groups := (n + rg - 1) / rg
	out = binary.LittleEndian.AppendUint32(out, uint32(groups))
	for g := 0; g < groups; g++ {
		lo := g * rg
		hi := lo + rg
		if hi > n {
			hi = n
		}
		raw := encodeChunk(&col, lo, hi)
		comp, err := codec.Encode(nil, raw, k)
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(hi-lo))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(comp)))
		out = append(out, comp...)
	}
	return out, nil
}

func encodeChunk(col *btrblocks.Column, lo, hi int) []byte {
	switch col.Type {
	case btrblocks.TypeInt:
		return encodeIntChunk(col.Ints[lo:hi])
	case btrblocks.TypeDouble:
		return encodeDoubleChunk(col.Doubles[lo:hi])
	case btrblocks.TypeString:
		return encodeStringChunk(col.Strings.Slice(lo, hi))
	}
	return nil
}

// --- integer chunks: dictionary + hybrid codes, or plain ---

func encodeIntChunk(src []int32) []byte {
	dict, codes, ok := tryDict32(src)
	if !ok {
		out := []byte{encPlain}
		for _, v := range src {
			out = binary.LittleEndian.AppendUint32(out, uint32(v))
		}
		return out
	}
	out := []byte{encDict}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(dict)))
	for _, v := range dict {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	return appendHybrid(out, codes, len(dict))
}

func tryDict32(src []int32) (dict []int32, codes []uint32, ok bool) {
	seen := make(map[int32]uint32, 1024)
	codes = make([]uint32, len(src))
	for i, v := range src {
		id, have := seen[v]
		if !have {
			if len(dict) >= maxDictSize {
				return nil, nil, false
			}
			id = uint32(len(dict))
			seen[v] = id
			dict = append(dict, v)
		}
		codes[i] = id
	}
	return dict, codes, true
}

// --- double chunks ---

func encodeDoubleChunk(src []float64) []byte {
	seen := make(map[uint64]uint32, 1024)
	var dict []uint64
	codes := make([]uint32, len(src))
	ok := true
	for i, v := range src {
		b := math.Float64bits(v)
		id, have := seen[b]
		if !have {
			if len(dict) >= maxDictSize {
				ok = false
				break
			}
			id = uint32(len(dict))
			seen[b] = id
			dict = append(dict, b)
		}
		codes[i] = id
	}
	if !ok {
		out := []byte{encPlain}
		for _, v := range src {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
		return out
	}
	out := []byte{encDict}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(dict)))
	for _, b := range dict {
		out = binary.LittleEndian.AppendUint64(out, b)
	}
	return appendHybrid(out, codes, len(dict))
}

// --- string chunks: dictionary of length-prefixed values, or plain ---

func encodeStringChunk(src coldata.Strings) []byte {
	n := src.Len()
	seen := make(map[string]uint32, 1024)
	var dict []string
	codes := make([]uint32, n)
	ok := true
	for i := 0; i < n; i++ {
		v := src.At(i)
		id, have := seen[v]
		if !have {
			if len(dict) >= maxDictSize {
				ok = false
				break
			}
			id = uint32(len(dict))
			seen[v] = id
			dict = append(dict, v)
		}
		codes[i] = id
	}
	if !ok {
		// plain: length-prefixed values, like Parquet's BYTE_ARRAY plain
		out := []byte{encPlain}
		out = binary.LittleEndian.AppendUint32(out, uint32(n))
		for i := 0; i < n; i++ {
			v := src.View(i)
			out = binary.LittleEndian.AppendUint32(out, uint32(len(v)))
			out = append(out, v...)
		}
		return out
	}
	out := []byte{encDict}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(dict)))
	for _, v := range dict {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(v)))
		out = append(out, v...)
	}
	return appendHybrid(out, codes, len(dict))
}

// --- the RLE/bit-packing hybrid for dictionary codes ---

// appendHybrid writes Parquet's RLE/bit-packed hybrid: width byte, value
// count, then runs with a uvarint header whose low bit selects an RLE run
// (value repeated count times) or a literal group of 8×k packed values.
func appendHybrid(dst []byte, codes []uint32, dictSize int) []byte {
	width := bitpack.Width(uint32(max(dictSize-1, 0)))
	dst = append(dst, byte(width))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(codes)))
	i := 0
	for i < len(codes) {
		// measure the run of equal codes starting here
		j := i + 1
		for j < len(codes) && codes[j] == codes[i] {
			j++
		}
		if j-i >= 8 {
			dst = binary.AppendUvarint(dst, uint64(j-i)<<1)
			dst = appendFixedWidth(dst, codes[i], width)
			i = j
			continue
		}
		// literal group: take up to 504 values (63 groups of 8), stopping
		// early if a long run starts
		start := i
		i = j
		for i < len(codes) && i-start < 504 {
			j = i + 1
			for j < len(codes) && codes[j] == codes[i] {
				j++
			}
			if j-i >= 8 {
				break
			}
			i = j
		}
		// Mid-stream literal groups must hold exactly groups*8 real
		// values (the decoder cannot distinguish padding); absorb values
		// from the following run to round up, and only zero-pad the
		// final group of the stream.
		if i < len(codes) {
			if up := (i - start + 7) / 8 * 8; start+up <= len(codes) {
				i = start + up
			} else {
				i = len(codes)
			}
		}
		count := i - start
		groups := (count + 7) / 8
		dst = binary.AppendUvarint(dst, uint64(groups)<<1|1)
		padded := make([]uint32, groups*8)
		copy(padded, codes[start:i])
		dst = bitpack.Pack(dst, padded, width)
	}
	return dst
}

func appendFixedWidth(dst []byte, v uint32, width uint) []byte {
	bytes := int(width+7) / 8
	for b := 0; b < bytes; b++ {
		dst = append(dst, byte(v>>(8*b)))
	}
	return dst
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// decodeHybrid reads a hybrid stream, returning codes and bytes consumed.
func decodeHybrid(src []byte) ([]uint32, int, error) {
	if len(src) < 5 {
		return nil, 0, ErrCorrupt
	}
	width := uint(src[0])
	if width > 32 {
		return nil, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(src[1:]))
	if n < 0 || n > 1<<28 {
		return nil, 0, ErrCorrupt
	}
	pos := 5
	out := make([]uint32, 0, n)
	for len(out) < n {
		header, read := binary.Uvarint(src[pos:])
		if read <= 0 {
			return nil, 0, ErrCorrupt
		}
		pos += read
		if header&1 == 0 {
			// RLE run
			count := int(header >> 1)
			if count < 0 || len(out)+count > n {
				return nil, 0, ErrCorrupt
			}
			bytes := int(width+7) / 8
			if pos+bytes > len(src) {
				return nil, 0, ErrCorrupt
			}
			var v uint32
			for b := 0; b < bytes; b++ {
				v |= uint32(src[pos+b]) << (8 * b)
			}
			pos += bytes
			for k := 0; k < count; k++ {
				out = append(out, v)
			}
			continue
		}
		groups := int(header >> 1)
		count := groups * 8
		if count <= 0 || count > 1<<24 {
			return nil, 0, ErrCorrupt
		}
		vals := make([]uint32, count)
		used, err := bitpack.Unpack(vals, src[pos:], count, width)
		if err != nil {
			return nil, 0, ErrCorrupt
		}
		pos += used
		take := count
		if len(out)+take > n {
			take = n - len(out)
		}
		out = append(out, vals[:take]...)
	}
	return out, pos, nil
}

// DecompressColumn reads a column written by CompressColumn.
func DecompressColumn(data []byte, name string) (btrblocks.Column, error) {
	var col btrblocks.Column
	col.Name = name
	if len(data) < 6 {
		return col, ErrCorrupt
	}
	k := codec.Kind(data[0])
	col.Type = btrblocks.Type(data[1])
	if col.Type > btrblocks.TypeString {
		return col, ErrCorrupt
	}
	groups := int(binary.LittleEndian.Uint32(data[2:]))
	pos := 6
	for g := 0; g < groups; g++ {
		if len(data) < pos+8 {
			return col, ErrCorrupt
		}
		rows := int(binary.LittleEndian.Uint32(data[pos:]))
		chunkLen := int(binary.LittleEndian.Uint32(data[pos+4:]))
		pos += 8
		if chunkLen < 0 || len(data) < pos+chunkLen {
			return col, ErrCorrupt
		}
		raw, err := codec.Decode(nil, data[pos:pos+chunkLen], k)
		if err != nil {
			return col, ErrCorrupt
		}
		pos += chunkLen
		if err := decodeChunk(&col, raw, rows); err != nil {
			return col, err
		}
	}
	if pos != len(data) {
		return col, ErrCorrupt
	}
	return col, nil
}

func decodeChunk(col *btrblocks.Column, raw []byte, rows int) error {
	if len(raw) < 1 {
		return ErrCorrupt
	}
	enc := raw[0]
	body := raw[1:]
	switch col.Type {
	case btrblocks.TypeInt:
		return decodeIntChunk(col, enc, body, rows)
	case btrblocks.TypeDouble:
		return decodeDoubleChunk(col, enc, body, rows)
	case btrblocks.TypeString:
		return decodeStringChunk(col, enc, body, rows)
	}
	return ErrCorrupt
}

func decodeIntChunk(col *btrblocks.Column, enc byte, body []byte, rows int) error {
	switch enc {
	case encPlain:
		if len(body) < 4*rows {
			return ErrCorrupt
		}
		for i := 0; i < rows; i++ {
			col.Ints = append(col.Ints, int32(binary.LittleEndian.Uint32(body[4*i:])))
		}
		return nil
	case encDict:
		if len(body) < 4 {
			return ErrCorrupt
		}
		dictN := int(binary.LittleEndian.Uint32(body))
		if dictN < 0 || len(body) < 4+4*dictN {
			return ErrCorrupt
		}
		dict := make([]int32, dictN)
		for i := range dict {
			dict[i] = int32(binary.LittleEndian.Uint32(body[4+4*i:]))
		}
		codes, _, err := decodeHybrid(body[4+4*dictN:])
		if err != nil || len(codes) != rows {
			return ErrCorrupt
		}
		for _, c := range codes {
			if int(c) >= dictN {
				return ErrCorrupt
			}
			col.Ints = append(col.Ints, dict[c])
		}
		return nil
	}
	return ErrCorrupt
}

func decodeDoubleChunk(col *btrblocks.Column, enc byte, body []byte, rows int) error {
	switch enc {
	case encPlain:
		if len(body) < 8*rows {
			return ErrCorrupt
		}
		for i := 0; i < rows; i++ {
			col.Doubles = append(col.Doubles, math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:])))
		}
		return nil
	case encDict:
		if len(body) < 4 {
			return ErrCorrupt
		}
		dictN := int(binary.LittleEndian.Uint32(body))
		if dictN < 0 || len(body) < 4+8*dictN {
			return ErrCorrupt
		}
		dict := make([]float64, dictN)
		for i := range dict {
			dict[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[4+8*i:]))
		}
		codes, _, err := decodeHybrid(body[4+8*dictN:])
		if err != nil || len(codes) != rows {
			return ErrCorrupt
		}
		for _, c := range codes {
			if int(c) >= dictN {
				return ErrCorrupt
			}
			col.Doubles = append(col.Doubles, dict[c])
		}
		return nil
	}
	return ErrCorrupt
}

func decodeStringChunk(col *btrblocks.Column, enc byte, body []byte, rows int) error {
	switch enc {
	case encPlain:
		if len(body) < 4 {
			return ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(body))
		if n != rows {
			return ErrCorrupt
		}
		pos := 4
		for i := 0; i < n; i++ {
			if len(body) < pos+4 {
				return ErrCorrupt
			}
			l := int(binary.LittleEndian.Uint32(body[pos:]))
			pos += 4
			if l < 0 || len(body) < pos+l {
				return ErrCorrupt
			}
			col.Strings = col.Strings.AppendBytes(body[pos : pos+l])
			pos += l
		}
		return nil
	case encDict:
		if len(body) < 4 {
			return ErrCorrupt
		}
		dictN := int(binary.LittleEndian.Uint32(body))
		if dictN < 0 || dictN > maxDictSize {
			return ErrCorrupt
		}
		pos := 4
		dict := make([][]byte, dictN)
		for i := range dict {
			if len(body) < pos+4 {
				return ErrCorrupt
			}
			l := int(binary.LittleEndian.Uint32(body[pos:]))
			pos += 4
			if l < 0 || len(body) < pos+l {
				return ErrCorrupt
			}
			dict[i] = body[pos : pos+l]
			pos += l
		}
		codes, _, err := decodeHybrid(body[pos:])
		if err != nil || len(codes) != rows {
			return ErrCorrupt
		}
		// Plain materialization with string copies: the format has no
		// shared-pool views, which is exactly the decompression cost the
		// paper measures against.
		for _, c := range codes {
			if int(c) >= dictN {
				return ErrCorrupt
			}
			col.Strings = col.Strings.AppendBytes(dict[c])
		}
		return nil
	}
	return ErrCorrupt
}
