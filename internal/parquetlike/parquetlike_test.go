package parquetlike

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"btrblocks"
	"btrblocks/internal/codec"
)

func roundTrip(t *testing.T, col btrblocks.Column, opt *Options) int {
	t.Helper()
	data, err := CompressColumn(col, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressColumn(data, col.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != col.Len() || got.Type != col.Type {
		t.Fatalf("shape mismatch: %d/%v vs %d/%v", got.Len(), got.Type, col.Len(), col.Type)
	}
	switch col.Type {
	case btrblocks.TypeInt:
		for i := range col.Ints {
			if got.Ints[i] != col.Ints[i] {
				t.Fatalf("int %d mismatch", i)
			}
		}
	case btrblocks.TypeDouble:
		for i := range col.Doubles {
			if math.Float64bits(got.Doubles[i]) != math.Float64bits(col.Doubles[i]) {
				t.Fatalf("double %d mismatch", i)
			}
		}
	case btrblocks.TypeString:
		if !got.Strings.Equal(col.Strings) {
			t.Fatal("string mismatch")
		}
	}
	return len(data)
}

func TestRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ints := make([]int32, 200000)
	doubles := make([]float64, 200000)
	strs := make([]string, 200000)
	for i := range ints {
		ints[i] = int32(rng.Intn(500))
		doubles[i] = float64(rng.Intn(1000)) / 4
		strs[i] = fmt.Sprintf("customer-%d", rng.Intn(300))
	}
	cols := []btrblocks.Column{
		btrblocks.IntColumn("i", ints),
		btrblocks.DoubleColumn("d", doubles),
		btrblocks.StringColumn("s", strs),
	}
	for _, k := range []codec.Kind{codec.None, codec.Snappy, codec.LZ4, codec.Heavy} {
		opt := &Options{Codec: k}
		for _, col := range cols {
			roundTrip(t, col, opt)
		}
	}
}

func TestDictionaryFallbackToPlain(t *testing.T) {
	// more distinct values than maxDictSize forces the plain path,
	// mirroring Parquet's fallback behaviour the paper cites.
	n := maxDictSize + 1000
	ints := make([]int32, n)
	for i := range ints {
		ints[i] = int32(i)
	}
	opt := &Options{}
	size := roundTrip(t, btrblocks.IntColumn("unique", ints), opt)
	if size < 4*n {
		t.Fatalf("unique ints should stay plain (~%d bytes), got %d", 4*n, size)
	}
	strs := make([]string, 70000)
	for i := range strs {
		strs[i] = fmt.Sprintf("unique-value-%d", i)
	}
	roundTrip(t, btrblocks.StringColumn("us", strs), opt)
	doubles := make([]float64, 70000)
	for i := range doubles {
		doubles[i] = float64(i) + 0.5
	}
	roundTrip(t, btrblocks.DoubleColumn("ud", doubles), opt)
}

func TestHybridEncodesRunsCompactly(t *testing.T) {
	n := 100000
	ints := make([]int32, n) // one long run of zeros
	data, err := CompressColumn(btrblocks.IntColumn("zeros", ints), &Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 200 {
		t.Fatalf("all-zero column should RLE to almost nothing, got %d bytes", len(data))
	}
	roundTrip(t, btrblocks.IntColumn("zeros", ints), &Options{})
}

func TestHybridLiteralRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ints := make([]int32, 10007) // odd size exercises literal padding
	for i := range ints {
		ints[i] = int32(rng.Intn(100))
	}
	roundTrip(t, btrblocks.IntColumn("noise", ints), &Options{})
}

func TestSnappyHelpsOnPlainStrings(t *testing.T) {
	// Text with redundancy but too many distinct values for a dictionary:
	// general-purpose compression is where Parquet+Snappy gains.
	strs := make([]string, 70000)
	for i := range strs {
		strs[i] = fmt.Sprintf("https://example.com/a/very/long/path/%d/%s", i, strings.Repeat("x", i%30))
	}
	col := btrblocks.StringColumn("urls", strs)
	plain := roundTrip(t, col, &Options{Codec: codec.None})
	snappied := roundTrip(t, col, &Options{Codec: codec.Snappy})
	heavied := roundTrip(t, col, &Options{Codec: codec.Heavy})
	if snappied >= plain {
		t.Fatalf("snappy (%d) should beat none (%d)", snappied, plain)
	}
	if heavied >= snappied {
		t.Fatalf("heavy (%d) should beat snappy (%d)", heavied, snappied)
	}
}

func TestSmallRowGroups(t *testing.T) {
	ints := make([]int32, 1000)
	for i := range ints {
		ints[i] = int32(i % 7)
	}
	roundTrip(t, btrblocks.IntColumn("x", ints), &Options{RowGroupSize: 128})
}

func TestCorrupt(t *testing.T) {
	data, err := CompressColumn(btrblocks.IntColumn("x", []int32{1, 2, 3}), &Options{})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecompressColumn(data[:cut], "x"); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestQuick(t *testing.T) {
	opt := &Options{RowGroupSize: 64, Codec: codec.Snappy}
	f := func(ints []int32, strs []string) bool {
		ic := btrblocks.IntColumn("i", ints)
		data, err := CompressColumn(ic, opt)
		if err != nil {
			return false
		}
		got, err := DecompressColumn(data, "i")
		if err != nil || got.Len() != len(ints) {
			return false
		}
		for i := range ints {
			if got.Ints[i] != ints[i] {
				return false
			}
		}
		sc := btrblocks.StringColumn("s", strs)
		data, err = CompressColumn(sc, opt)
		if err != nil {
			return false
		}
		gs, err := DecompressColumn(data, "s")
		return err == nil && gs.Strings.Equal(sc.Strings)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
