package stats

import (
	"math"
	"testing"

	"btrblocks/coldata"
)

func TestComputeInt(t *testing.T) {
	st := ComputeInt([]int32{5, 5, 5, -2, -2, 9})
	if st.N != 6 || st.Min != -2 || st.Max != 9 {
		t.Fatalf("min/max wrong: %+v", st)
	}
	if st.Distinct != 3 || st.RunCount != 3 {
		t.Fatalf("distinct/runs wrong: %+v", st)
	}
	if st.AvgRunLen != 2 {
		t.Fatalf("avg run = %f", st.AvgRunLen)
	}
	if st.TopValue != 5 || st.TopCount != 3 {
		t.Fatalf("top wrong: %+v", st)
	}
	if st.UniqueFrac != 0.5 {
		t.Fatalf("unique frac = %f", st.UniqueFrac)
	}
}

func TestComputeIntEmpty(t *testing.T) {
	st := ComputeInt(nil)
	if st.N != 0 || st.Distinct != 0 {
		t.Fatalf("empty stats wrong: %+v", st)
	}
}

func TestComputeDoubleNaNHandling(t *testing.T) {
	nan := math.NaN()
	st := ComputeDouble([]float64{nan, nan, nan, 1.5})
	if st.Distinct != 2 {
		t.Fatalf("NaN must count as one distinct bit pattern, got %d", st.Distinct)
	}
	if st.TopCount != 3 {
		t.Fatalf("NaN top count = %d", st.TopCount)
	}
	if st.RunCount != 2 {
		t.Fatalf("NaN run must be one run, got %d", st.RunCount)
	}
}

func TestComputeDoubleSignedZero(t *testing.T) {
	st := ComputeDouble([]float64{0, math.Copysign(0, -1), 0})
	if st.Distinct != 2 {
		t.Fatalf("-0.0 and 0.0 must be distinct, got %d", st.Distinct)
	}
	if st.RunCount != 3 {
		t.Fatalf("runs = %d", st.RunCount)
	}
}

func TestComputeString(t *testing.T) {
	col := coldata.MakeStrings([]string{"aa", "aa", "b", "b", "b", "ccc"})
	st := ComputeString(col)
	if st.N != 6 || st.Distinct != 3 || st.TotalLen != 10 || st.MaxLen != 3 {
		t.Fatalf("string stats wrong: %+v", st)
	}
	if st.TopValue != "b" || st.TopCount != 3 {
		t.Fatalf("top wrong: %+v", st)
	}
	if st.RunCount != 3 || st.AvgRunLen != 2 {
		t.Fatalf("runs wrong: %+v", st)
	}
}

func TestComputeStringEmpty(t *testing.T) {
	st := ComputeString(coldata.Strings{})
	if st.N != 0 {
		t.Fatalf("empty stats wrong: %+v", st)
	}
}
