// Package stats computes the single-pass per-block statistics that drive
// scheme viability filtering (step 1–2 of the paper's compression loop):
// min/max, distinct count, average run length and the most frequent value.
package stats

import (
	"bytes"
	"math"

	"btrblocks/coldata"
)

// Int holds statistics for a block of int32 values.
type Int struct {
	N          int
	Min, Max   int32
	Distinct   int
	RunCount   int
	AvgRunLen  float64
	TopValue   int32
	TopCount   int
	UniqueFrac float64
}

// ComputeInt scans src once (plus a hash map for distinct/top counting).
// Distinct counting is capped just past half the block: every scheme
// filter only needs to know whether more than half the values are unique,
// so the map never has to grow further — bounding both memory and the
// dominant cost of the statistics pass on high-cardinality blocks.
func ComputeInt(src []int32) Int {
	st := Int{N: len(src)}
	if len(src) == 0 {
		return st
	}
	st.Min, st.Max = src[0], src[0]
	cap := len(src)/2 + 2
	counts := make(map[int32]int, min(cap, 4096))
	overflow := false
	runs := 1
	for i, v := range src {
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		if c, ok := counts[v]; ok {
			counts[v] = c + 1
		} else if len(counts) < cap {
			counts[v] = 1
		} else {
			overflow = true
		}
		if i > 0 && v != src[i-1] {
			runs++
		}
	}
	st.RunCount = runs
	st.AvgRunLen = float64(len(src)) / float64(runs)
	st.Distinct = len(counts)
	if overflow {
		st.Distinct = cap
	}
	st.UniqueFrac = float64(st.Distinct) / float64(len(src))
	for v, c := range counts {
		if c > st.TopCount || (c == st.TopCount && v < st.TopValue) {
			st.TopValue, st.TopCount = v, c
		}
	}
	return st
}

// Double holds statistics for a block of float64 values. Distinct counting
// uses the raw bit pattern, so 0.0 and -0.0 (and distinct NaN payloads)
// count separately — matching the bit-exact semantics of the codecs.
type Double struct {
	N          int
	Min, Max   float64
	Distinct   int
	RunCount   int
	AvgRunLen  float64
	TopValue   float64
	TopCount   int
	UniqueFrac float64
}

// ComputeDouble scans src once.
func ComputeDouble(src []float64) Double {
	st := Double{N: len(src)}
	if len(src) == 0 {
		return st
	}
	st.Min, st.Max = src[0], src[0]
	// Keyed by bit pattern so NaN (which is != itself) does not create a
	// fresh map entry per occurrence, and -0.0 counts separately from 0.0.
	// Distinct counting is capped as in ComputeInt.
	cap := len(src)/2 + 2
	counts := make(map[uint64]int, min(cap, 4096))
	overflow := false
	runs := 1
	for i, v := range src {
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		b := math.Float64bits(v)
		if c, ok := counts[b]; ok {
			counts[b] = c + 1
		} else if len(counts) < cap {
			counts[b] = 1
		} else {
			overflow = true
		}
		if i > 0 && b != math.Float64bits(src[i-1]) {
			runs++
		}
	}
	st.RunCount = runs
	st.AvgRunLen = float64(len(src)) / float64(runs)
	st.Distinct = len(counts)
	if overflow {
		st.Distinct = cap
	}
	st.UniqueFrac = float64(st.Distinct) / float64(len(src))
	var topBits uint64
	first := true
	for b, c := range counts {
		if first || c > st.TopCount || (c == st.TopCount && b < topBits) {
			topBits, st.TopCount = b, c
			first = false
		}
	}
	st.TopValue = math.Float64frombits(topBits)
	return st
}

// String holds statistics for a block of string values.
type String struct {
	N          int
	Distinct   int
	RunCount   int
	AvgRunLen  float64
	TotalLen   int
	MaxLen     int
	TopValue   string
	TopCount   int
	UniqueFrac float64
}

// ComputeString scans the column once.
func ComputeString(src coldata.Strings) String {
	st := String{N: src.Len(), TotalLen: len(src.Data)}
	if st.N == 0 {
		return st
	}
	cap := st.N/2 + 2
	counts := make(map[string]int, min(cap, 4096))
	overflow := false
	runs := 1
	var prev []byte
	for i := 0; i < st.N; i++ {
		// View + map[string(v)] lookups avoid a per-row string allocation;
		// only genuinely new distinct values are materialized as keys.
		v := src.View(i)
		if l := len(v); l > st.MaxLen {
			st.MaxLen = l
		}
		if c, ok := counts[string(v)]; ok {
			counts[string(v)] = c + 1
		} else if len(counts) < cap {
			counts[string(v)] = 1
		} else {
			overflow = true
		}
		if i > 0 && !bytes.Equal(v, prev) {
			runs++
		}
		prev = v
	}
	st.RunCount = runs
	st.AvgRunLen = float64(st.N) / float64(runs)
	st.Distinct = len(counts)
	if overflow {
		st.Distinct = cap
	}
	st.UniqueFrac = float64(st.Distinct) / float64(st.N)
	for v, c := range counts {
		if c > st.TopCount || (c == st.TopCount && v < st.TopValue) {
			st.TopValue, st.TopCount = v, c
		}
	}
	return st
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Int64 holds statistics for a block of int64 values.
type Int64 struct {
	N          int
	Min, Max   int64
	Distinct   int
	RunCount   int
	AvgRunLen  float64
	TopValue   int64
	TopCount   int
	UniqueFrac float64
}

// ComputeInt64 scans src once, with the same capped distinct counting as
// ComputeInt.
func ComputeInt64(src []int64) Int64 {
	st := Int64{N: len(src)}
	if len(src) == 0 {
		return st
	}
	st.Min, st.Max = src[0], src[0]
	cap := len(src)/2 + 2
	counts := make(map[int64]int, min(cap, 4096))
	overflow := false
	runs := 1
	for i, v := range src {
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		if c, ok := counts[v]; ok {
			counts[v] = c + 1
		} else if len(counts) < cap {
			counts[v] = 1
		} else {
			overflow = true
		}
		if i > 0 && v != src[i-1] {
			runs++
		}
	}
	st.RunCount = runs
	st.AvgRunLen = float64(len(src)) / float64(runs)
	st.Distinct = len(counts)
	if overflow {
		st.Distinct = cap
	}
	st.UniqueFrac = float64(st.Distinct) / float64(len(src))
	for v, c := range counts {
		if c > st.TopCount || (c == st.TopCount && v < st.TopValue) {
			st.TopValue, st.TopCount = v, c
		}
	}
	return st
}
