package codec

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestRoundTripAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs := [][]byte{
		nil,
		[]byte("x"),
		[]byte(strings.Repeat("compress me ", 5000)),
	}
	random := make([]byte, 30000)
	rng.Read(random)
	inputs = append(inputs, random)
	for _, k := range []Kind{None, Snappy, LZ4, Heavy} {
		for _, src := range inputs {
			enc, err := Encode(nil, src, k)
			if err != nil {
				t.Fatalf("%s: %v", k, err)
			}
			dec, err := Decode(nil, enc, k)
			if err != nil {
				t.Fatalf("%s: %v", k, err)
			}
			if !bytes.Equal(dec, src) {
				t.Fatalf("%s: round trip mismatch", k)
			}
		}
	}
}

func TestRatioOrdering(t *testing.T) {
	// The lineup must preserve the trade-off the paper relies on:
	// heavy < snappy/lz4 < none in compressed size on redundant text.
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 2000))
	size := map[Kind]int{}
	for _, k := range []Kind{None, Snappy, LZ4, Heavy} {
		enc, err := Encode(nil, src, k)
		if err != nil {
			t.Fatal(err)
		}
		size[k] = len(enc)
	}
	if !(size[Heavy] < size[Snappy] && size[Snappy] < size[None]) {
		t.Fatalf("size ordering broken: %v", size)
	}
	if !(size[Heavy] < size[LZ4] && size[LZ4] < size[None]) {
		t.Fatalf("size ordering broken: %v", size)
	}
}

func TestUnknownKind(t *testing.T) {
	if _, err := Encode(nil, []byte("x"), Kind(99)); err != ErrUnknown {
		t.Fatal("unknown encode kind accepted")
	}
	if _, err := Decode(nil, []byte("x"), Kind(99)); err != ErrUnknown {
		t.Fatal("unknown decode kind accepted")
	}
}

func TestNames(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Snappy: "snappy", LZ4: "lz4", Heavy: "zstd*", Kind(9): "invalid",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}
