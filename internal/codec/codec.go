// Package codec selects among the general-purpose compression codecs the
// baselines layer under their encodings, mirroring Parquet's configurable
// page compression: none, Snappy, LZ4, or the heavyweight entropy codec
// (the Zstd slot; DEFLATE in this reproduction — see DESIGN.md §4).
package codec

import (
	"errors"

	"btrblocks/internal/heavy"
	"btrblocks/internal/lz4"
	"btrblocks/internal/snappy"
)

// Kind identifies a general-purpose codec.
type Kind uint8

// Available codecs.
const (
	None Kind = iota
	Snappy
	LZ4
	Heavy // entropy-coded LZ: the paper's Zstd slot
)

// ErrUnknown is returned for an invalid codec id.
var ErrUnknown = errors.New("codec: unknown kind")

// String returns the codec name as used in experiment output.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Snappy:
		return "snappy"
	case LZ4:
		return "lz4"
	case Heavy:
		return "zstd*" // stand-in; see DESIGN.md
	}
	return "invalid"
}

// Encode compresses src with codec k and appends to dst.
func Encode(dst, src []byte, k Kind) ([]byte, error) {
	switch k {
	case None:
		return append(dst, src...), nil
	case Snappy:
		return snappy.Encode(dst, src), nil
	case LZ4:
		return lz4.Encode(dst, src), nil
	case Heavy:
		return heavy.Encode(dst, src), nil
	}
	return dst, ErrUnknown
}

// Decode decompresses src with codec k and appends to dst.
func Decode(dst, src []byte, k Kind) ([]byte, error) {
	switch k {
	case None:
		return append(dst, src...), nil
	case Snappy:
		return snappy.Decode(dst, src)
	case LZ4:
		return lz4.Decode(dst, src)
	case Heavy:
		return heavy.Decode(dst, src)
	}
	return dst, ErrUnknown
}
