// Package sample implements the compression-ratio estimation sampling of
// §3.1: multiple small runs of consecutive values chosen from random
// positions inside non-overlapping parts of the block (Figure 2). The
// strategy (number of runs × run length) is parameterized so the Figure 5
// and Figure 6 experiments can sweep alternatives, from single random
// tuples to one contiguous range.
package sample

import (
	"math/rand"

	"btrblocks/coldata"
)

// Strategy describes a sampling scheme: Runs runs of RunLen consecutive
// tuples each. {1, n} is a single range; {n, 1} is random single tuples.
type Strategy struct {
	Runs   int
	RunLen int
}

// Default is the paper's production choice: 10 runs × 64 tuples = 1% of a
// 64,000-value block.
var Default = Strategy{Runs: 10, RunLen: 64}

// Size returns the number of sampled tuples.
func (s Strategy) Size() int { return s.Runs * s.RunLen }

// Range is a half-open [Start, End) interval of row positions.
type Range struct{ Start, End int }

// Ranges picks the sampled intervals for a block of n values. The block is
// divided into Runs non-overlapping parts and one run is placed at a
// random position inside each part, preserving both locality (consecutive
// tuples within a run) and coverage (runs spread over the whole block).
// The rng makes placement reproducible for a given seed.
func (s Strategy) Ranges(n int, rng *rand.Rand) []Range {
	if n <= 0 || s.Runs <= 0 || s.RunLen <= 0 {
		return nil
	}
	if s.Size() >= n {
		return []Range{{0, n}}
	}
	parts := s.Runs
	out := make([]Range, 0, parts)
	partLen := n / parts
	for p := 0; p < parts; p++ {
		lo := p * partLen
		hi := lo + partLen
		if p == parts-1 {
			hi = n
		}
		runLen := s.RunLen
		if runLen > hi-lo {
			runLen = hi - lo
		}
		start := lo
		if slack := hi - lo - runLen; slack > 0 {
			start += rng.Intn(slack + 1)
		}
		out = append(out, Range{start, start + runLen})
	}
	return out
}

// Ints gathers the sampled values of an int32 block.
func Ints(src []int32, s Strategy, rng *rand.Rand) []int32 {
	ranges := s.Ranges(len(src), rng)
	if len(ranges) == 1 && ranges[0].Start == 0 && ranges[0].End == len(src) {
		return src
	}
	out := make([]int32, 0, s.Size())
	for _, r := range ranges {
		out = append(out, src[r.Start:r.End]...)
	}
	return out
}

// Doubles gathers the sampled values of a float64 block.
func Doubles(src []float64, s Strategy, rng *rand.Rand) []float64 {
	ranges := s.Ranges(len(src), rng)
	if len(ranges) == 1 && ranges[0].Start == 0 && ranges[0].End == len(src) {
		return src
	}
	out := make([]float64, 0, s.Size())
	for _, r := range ranges {
		out = append(out, src[r.Start:r.End]...)
	}
	return out
}

// Strings gathers the sampled values of a string block.
func Strings(src coldata.Strings, s Strategy, rng *rand.Rand) coldata.Strings {
	n := src.Len()
	ranges := s.Ranges(n, rng)
	if len(ranges) == 1 && ranges[0].Start == 0 && ranges[0].End == n {
		return src
	}
	out := coldata.NewStringsBuilder(s.Size(), 0)
	for _, r := range ranges {
		for i := r.Start; i < r.End; i++ {
			out = out.AppendBytes(src.View(i))
		}
	}
	return out
}

// Ints64 gathers the sampled values of an int64 block.
func Ints64(src []int64, s Strategy, rng *rand.Rand) []int64 {
	ranges := s.Ranges(len(src), rng)
	if len(ranges) == 1 && ranges[0].Start == 0 && ranges[0].End == len(src) {
		return src
	}
	out := make([]int64, 0, s.Size())
	for _, r := range ranges {
		out = append(out, src[r.Start:r.End]...)
	}
	return out
}
