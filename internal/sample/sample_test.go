package sample

import (
	"math/rand"
	"testing"

	"btrblocks/coldata"
)

func TestDefaultStrategySize(t *testing.T) {
	if Default.Size() != 640 {
		t.Fatalf("default sample size = %d, want 640 (1%% of 64k)", Default.Size())
	}
}

func TestRangesNonOverlappingAndCovering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1000 + rng.Intn(100000)
		s := Strategy{Runs: 1 + rng.Intn(20), RunLen: 1 + rng.Intn(200)}
		ranges := s.Ranges(n, rng)
		prevEnd := 0
		for i, r := range ranges {
			if r.Start < prevEnd {
				t.Fatalf("range %d overlaps previous (%+v)", i, ranges)
			}
			if r.End <= r.Start || r.End > n {
				t.Fatalf("range %d out of bounds: %+v (n=%d)", i, r, n)
			}
			prevEnd = r.End
		}
		if s.Size() < n && len(ranges) != s.Runs {
			t.Fatalf("expected %d runs, got %d", s.Runs, len(ranges))
		}
	}
}

func TestSmallBlockReturnsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := []int32{1, 2, 3}
	got := Ints(src, Default, rng)
	if len(got) != 3 {
		t.Fatalf("small input should be returned whole, got %d values", len(got))
	}
}

func TestRunsSpreadAcrossBlock(t *testing.T) {
	// Every run must land in its own part of the block — the locality +
	// coverage compromise of Figure 2.
	rng := rand.New(rand.NewSource(3))
	n := 64000
	s := Default
	ranges := s.Ranges(n, rng)
	partLen := n / s.Runs
	for i, r := range ranges {
		lo, hi := i*partLen, (i+1)*partLen
		if i == s.Runs-1 {
			hi = n
		}
		if r.Start < lo || r.End > hi {
			t.Fatalf("run %d [%d,%d) escaped its part [%d,%d)", i, r.Start, r.End, lo, hi)
		}
	}
}

func TestTypedGathers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ints := make([]int32, 64000)
	doubles := make([]float64, 64000)
	strs := coldata.NewStringsBuilder(64000, 0)
	for i := range ints {
		ints[i] = int32(i)
		doubles[i] = float64(i)
		strs = strs.Append("v")
	}
	if got := Ints(ints, Default, rand.New(rand.NewSource(4))); len(got) != 640 {
		t.Fatalf("int sample size %d", len(got))
	}
	if got := Doubles(doubles, Default, rand.New(rand.NewSource(4))); len(got) != 640 {
		t.Fatalf("double sample size %d", len(got))
	}
	if got := Strings(strs, Default, rng); got.Len() != 640 {
		t.Fatalf("string sample size %d", got.Len())
	}
}

func TestDeterministicForSeed(t *testing.T) {
	src := make([]int32, 64000)
	for i := range src {
		src[i] = int32(i)
	}
	a := Ints(src, Default, rand.New(rand.NewSource(7)))
	b := Ints(src, Default, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling must be deterministic for a fixed seed")
		}
	}
}

func TestDegenerateStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if got := (Strategy{Runs: 0, RunLen: 64}).Ranges(1000, rng); got != nil {
		t.Fatal("zero runs should produce no ranges")
	}
	if got := (Strategy{Runs: 640, RunLen: 1}).Ranges(64000, rng); len(got) != 640 {
		t.Fatalf("single-tuple strategy: %d ranges", len(got))
	}
	if got := (Strategy{Runs: 1, RunLen: 640}).Ranges(64000, rng); len(got) != 1 || got[0].End-got[0].Start != 640 {
		t.Fatalf("single-range strategy wrong: %+v", got)
	}
}
