package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSerialRunsInOrder(t *testing.T) {
	var got []int
	err := Run(context.Background(), 10, 1, func(i int) error {
		got = append(got, i)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("serial order broken at %d: got %v", i, got)
		}
	}
	if len(got) != 10 {
		t.Fatalf("ran %d tasks, want 10", len(got))
	}
}

func TestParallelRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{2, 3, 8, 100} {
		n := 137
		counts := make([]int32, n)
		err := Run(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestZeroTasks(t *testing.T) {
	if err := Run(context.Background(), 0, 4, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

// TestMinIndexErrorDeterminism is the engine's core contract: whatever
// the worker count and scheduling, the returned error is the one a
// serial loop would have hit first.
func TestMinIndexErrorDeterminism(t *testing.T) {
	n := 64
	failAt := map[int]bool{17: true, 18: true, 40: true, 63: true}
	for _, workers := range []int{1, 2, 7, 16} {
		for trial := 0; trial < 20; trial++ {
			err := Run(context.Background(), n, workers, func(i int) error {
				if failAt[i] {
					return fmt.Errorf("task %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "task 17 failed" {
				t.Fatalf("workers=%d trial=%d: got %v, want task 17 failed", workers, trial, err)
			}
		}
	}
}

// TestTasksBelowErrorComplete checks property 1 of the package contract:
// when the error at index e is returned, every index < e ran.
func TestTasksBelowErrorComplete(t *testing.T) {
	n := 200
	e := 150
	for trial := 0; trial < 10; trial++ {
		var ran sync.Map
		err := Run(context.Background(), n, 8, func(i int) error {
			if i == e {
				return errors.New("boom")
			}
			ran.Store(i, true)
			return nil
		})
		if err == nil {
			t.Fatal("expected error")
		}
		for i := 0; i < e; i++ {
			if _, ok := ran.Load(i); !ok {
				t.Fatalf("trial %d: task %d below error index %d did not run", trial, i, e)
			}
		}
	}
}

func TestErrorStopsClaiming(t *testing.T) {
	var ran atomic.Int32
	n := 10000
	err := Run(context.Background(), n, 4, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := int(ran.Load()); got == n {
		t.Fatalf("error did not stop claiming: all %d tasks ran", n)
	}
}

func TestContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := Run(ctx, 100, workers, func(int) error { ran.Add(1); return nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d tasks ran under a cancelled context", workers, ran.Load())
		}
	}
}

func TestContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	n := 100000
	err := Run(ctx, n, 4, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := int(ran.Load()); got == n {
		t.Fatal("cancellation did not stop claiming")
	}
}

func TestNilContext(t *testing.T) {
	var ran atomic.Int32
	if err := Run(nil, 50, 4, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", ran.Load())
	}
}

type testObserver struct {
	mu      sync.Mutex
	path    string
	workers int
	runs    int
	waits   int
}

func (o *testObserver) RecordWorkers(path string, workers int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.path, o.workers = path, workers
	o.runs++
}

func (o *testObserver) ObserveQueueWait(path string, wait time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.waits++
}

func TestObserverSeesWorkersAndWaits(t *testing.T) {
	o := &testObserver{}
	n := 32
	if err := Observed(context.Background(), n, 4, "test_path", o, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if o.path != "test_path" || o.workers != 4 || o.runs != 1 {
		t.Fatalf("observer saw path=%q workers=%d runs=%d", o.path, o.workers, o.runs)
	}
	if o.waits != n {
		t.Fatalf("observed %d queue waits, want %d", o.waits, n)
	}
}

func TestWorkersClampedToTasks(t *testing.T) {
	o := &testObserver{}
	if err := Observed(context.Background(), 3, 16, "clamp", o, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if o.workers != 3 {
		t.Fatalf("recorded %d workers, want clamp to 3 tasks", o.workers)
	}
}

func TestWorkersHelper(t *testing.T) {
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

// TestNoGoroutineLeaks runs the pool many times — successful, failing
// and cancelled — and checks the goroutine count settles back.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 50; trial++ {
		_ = Run(context.Background(), 64, 8, func(int) error { return nil })
		_ = Run(context.Background(), 64, 8, func(i int) error {
			if i == 5 {
				return errors.New("fail")
			}
			return nil
		})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = Run(ctx, 64, 8, func(int) error { return nil })
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}
