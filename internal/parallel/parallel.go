// Package parallel is the shared decode/compress worker-pool engine: a
// bounded pool that runs n index-addressed tasks on up to `workers`
// goroutines and guarantees the caller two properties the format layer
// builds its determinism contract on:
//
//  1. Every task index below the returned error's index has fully
//     completed. Workers claim indices from a monotonically increasing
//     counter and a claimed task always runs to completion, so when the
//     minimum failing index is e, indices 0..e-1 were claimed earlier
//     and finished. Combined with rule 2 this makes the error a caller
//     sees independent of the worker count.
//  2. When several tasks fail, Run returns the error of the smallest
//     index — exactly the error a serial left-to-right loop would have
//     returned first.
//
// With workers <= 1 the pool degenerates to a plain serial loop on the
// caller's goroutine, which is the reference behavior the parallel mode
// must be indistinguishable from.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"time"

	"btrblocks/internal/obs"
)

// Task is one unit of work, addressed by its index in [0, n).
type Task func(i int) error

// WorkerTask is a Task that also receives the identity of the worker
// running it: a stable id in [0, workers). Tasks claimed by the same
// worker never overlap in time, so per-worker state (scratch arenas,
// reusable buffers) indexed by the id needs no locking.
type WorkerTask func(worker, i int) error

// Observer receives scheduling telemetry from Observed runs. It is
// implemented by *telemetry.Recorder; implementations must be safe for
// concurrent use.
type Observer interface {
	// RecordWorkers notes that one pool run on the named path used the
	// given number of workers.
	RecordWorkers(path string, workers int)
	// ObserveQueueWait records how long a task sat queued before a worker
	// claimed it (only observed when the pool actually runs parallel).
	ObserveQueueWait(path string, wait time.Duration)
}

// Workers normalizes a parallelism knob: values <= 0 mean "one worker
// per available CPU" (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes tasks 0..n-1 on up to `workers` goroutines and waits for
// them. See the package comment for the determinism contract. A nil ctx
// is valid and means "never cancelled".
func Run(ctx context.Context, n, workers int, fn Task) error {
	return Observed(ctx, n, workers, "", nil, fn)
}

// Observed is Run with scheduling telemetry: worker count and per-task
// queue-wait times are reported to o under the given path name. A nil
// Observer (or empty path) disables observation.
func Observed(ctx context.Context, n, workers int, path string, o Observer, fn Task) error {
	return ObservedWorkers(ctx, n, workers, path, o, func(_, i int) error { return fn(i) })
}

// ObservedWorkers is Observed for tasks that need to know which worker
// runs them. The worker id passed to fn is in [0, effective workers);
// the serial path (workers <= 1, or n == 1) always passes worker 0.
// Everything else — determinism contract, telemetry, cancellation — is
// identical to Observed.
func ObservedWorkers(ctx context.Context, n, workers int, path string, o Observer, fn WorkerTask) error {
	if n <= 0 {
		return ctxErr(ctx)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if o != nil && path != "" {
		o.RecordWorkers(path, workers)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			if err := spannedTask(ctx, path, 0, i, -1, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu      sync.Mutex
		next    int // next unclaimed task index, under mu
		minIdx  = -1
		minErr  error
		stopped bool
	)
	stop := make(chan struct{})
	halt := func() {
		if !stopped {
			stopped = true
			close(stop)
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if ctx != nil {
					select {
					case <-ctx.Done():
						mu.Lock()
						halt()
						mu.Unlock()
						return
					default:
					}
				}
				mu.Lock()
				if stopped || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				wait := time.Since(start)
				if o != nil && path != "" {
					o.ObserveQueueWait(path, wait)
				}
				if err := spannedTask(ctx, path, worker, i, wait, fn); err != nil {
					mu.Lock()
					if minIdx < 0 || i < minIdx {
						minIdx, minErr = i, err
					}
					halt()
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if minErr != nil {
		return minErr
	}
	return ctxErr(ctx)
}

// spannedTask runs one task, wrapped in a per-task child span tagged
// with worker id, task index, and queue wait when the context carries a
// span. With no span in the context (the common case) this adds only a
// context value lookup and zero allocations — the decode hot path's
// AllocsPerRun pin depends on that.
func spannedTask(ctx context.Context, path string, worker, i int, wait time.Duration, fn WorkerTask) error {
	if ctx == nil || path == "" || obs.SpanFromContext(ctx) == nil {
		return fn(worker, i)
	}
	_, sp := obs.StartChild(ctx, path+".task")
	sp.SetAttrInt("worker", int64(worker))
	sp.SetAttrInt("index", int64(i))
	if wait >= 0 {
		sp.SetAttrInt("queue_wait_ns", int64(wait))
	}
	err := fn(worker, i)
	sp.SetError(err)
	sp.End()
	return err
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
