package parallel

import (
	"context"
	"sync"
	"testing"
)

// TestObservedWorkersIDs checks the worker-id contract: ids are in
// [0, effective workers), the serial path always reports worker 0, and
// tasks claimed by the same worker never run concurrently.
func TestObservedWorkersIDs(t *testing.T) {
	// serial path: workers <= 1
	err := ObservedWorkers(context.Background(), 10, 1, "", nil, func(w, i int) error {
		if w != 0 {
			t.Errorf("serial task %d got worker %d", i, w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const n = 200
	var mu sync.Mutex
	running := make(map[int]bool) // worker id -> currently in a task
	seen := make(map[int]int)     // worker id -> tasks run
	err = ObservedWorkers(context.Background(), n, workers, "", nil, func(w, i int) error {
		if w < 0 || w >= workers {
			t.Errorf("task %d: worker id %d out of range", i, w)
		}
		mu.Lock()
		if running[w] {
			t.Errorf("worker %d entered task %d while another of its tasks is running", w, i)
		}
		running[w] = true
		seen[w]++
		mu.Unlock()
		mu.Lock()
		running[w] = false
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != n {
		t.Fatalf("ran %d tasks, want %d", total, n)
	}
}
