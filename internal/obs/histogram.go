// Package obs is the unified observability layer of the repository:
// cascade decision traces that explain *why* the sampling-based scheme
// selection picked what it picked (the data behind the paper's Figure 8
// scheme-pool ablation), a shared log-scale latency histogram used by
// both the compression telemetry and the HTTP serving layer, and slog
// helpers that give every served request a stable ID.
//
// The package deliberately has no HTTP or file-format knowledge: the
// compression pipeline feeds it core.Decision values, the blockstore
// feeds it durations, and both read back structured snapshots.
package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// histBuckets are the histogram's upper bounds in seconds: a pure
// log-scale ladder doubling from 1µs to ~4s (23 bounds), wide enough to
// cover a per-block decode (microseconds) and a cold HTTP scan (seconds)
// with the same type. A final +Inf bucket is implicit.
var histBuckets = func() [23]float64 {
	var b [23]float64
	ub := 1e-6
	for i := range b {
		b[i] = ub
		ub *= 2
	}
	return b
}()

// Histogram is a fixed-bucket log-scale duration histogram with atomic
// counters: concurrency-safe without locks, cheap enough for per-block
// hot paths, and renderable as a Prometheus histogram (cumulative
// _bucket/_sum/_count series). The zero value is ready to use.
type Histogram struct {
	counts   [len(histBuckets) + 1]atomic.Int64
	sumNanos atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.sumNanos.Add(d.Nanoseconds())
	s := d.Seconds()
	for i, ub := range histBuckets {
		if s <= ub {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(histBuckets)].Add(1)
}

// Reset zeroes all counters. Not atomic with respect to concurrent
// Observe calls; callers that need a consistent reset must serialize
// (the telemetry Recorder resets under its own lock).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sumNanos.Store(0)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	return time.Duration(h.sumNanos.Load())
}

// Quantile returns an upper-bound estimate of the p-quantile (0 < p <= 1):
// the upper bound of the first bucket whose cumulative count reaches
// p·total. Returns 0 when empty; observations past the last bound report
// the last bound (the histogram cannot resolve beyond it).
func (h *Histogram) Quantile(p float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, ub := range histBuckets {
		cum += h.counts[i].Load()
		if cum >= rank {
			return time.Duration(ub * float64(time.Second))
		}
	}
	return time.Duration(histBuckets[len(histBuckets)-1] * float64(time.Second))
}

// HistogramSnapshot is the JSON-friendly summary of a Histogram.
type HistogramSnapshot struct {
	Count    int64   `json:"count"`
	SumNanos int64   `json:"sum_nanos"`
	P50Nanos int64   `json:"p50_nanos"`
	P95Nanos int64   `json:"p95_nanos"`
	P99Nanos int64   `json:"p99_nanos"`
	MeanNano float64 `json:"mean_nanos"`
}

// Snapshot summarizes the histogram: count, sum and estimated p50/p95/p99.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.Count(),
		SumNanos: h.sumNanos.Load(),
		P50Nanos: h.Quantile(0.50).Nanoseconds(),
		P95Nanos: h.Quantile(0.95).Nanoseconds(),
		P99Nanos: h.Quantile(0.99).Nanoseconds(),
	}
	if s.Count > 0 {
		s.MeanNano = float64(s.SumNanos) / float64(s.Count)
	}
	return s
}

// String renders the summary as "n=…, p50=…, p95=…, p99=…".
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v",
		s.Count, time.Duration(s.P50Nanos), time.Duration(s.P95Nanos), time.Duration(s.P99Nanos))
}

// WritePromLines writes the histogram's sample lines (_bucket, _sum,
// _count) in Prometheus text exposition format. labels is a rendered
// label list without braces (e.g. `route="/v1/block"`) merged with the
// le label, or "" for none. HELP/TYPE headers are the caller's job so
// one metric family can span several label sets.
func (h *Histogram) WritePromLines(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, ub := range histBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, fmt.Sprintf("%g", ub), cum)
	}
	cum += h.counts[len(histBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNanos.Load())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
}
