package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanVersion identifies the span JSON schema documented in
// OBSERVABILITY.md. Bump it when a field changes meaning.
const SpanVersion = 1

// TraceparentHeader is the W3C trace-context header used to propagate a
// trace across processes.
const TraceparentHeader = "traceparent"

// RequestIDHeader carries the request ID alongside traceparent so the
// downstream process logs the originator's ID instead of minting one.
const RequestIDHeader = "X-Request-ID"

// TraceID identifies one end-to-end request across processes.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the all-zero (invalid) ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the all-zero (invalid) ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// ID generation mirrors the request-ID scheme: a per-process seed from
// startup time plus an atomic counter. Unique within and across process
// restarts without crypto randomness, and cheap enough to mint per span.
var (
	idSeed = uint64(time.Now().UnixNano())
	idSeq  atomic.Uint64
)

// splitmix64 is a tiny statistically-solid mixer; it spreads the seed+seq
// pairs over the full 64-bit space so IDs don't share visible prefixes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newTraceID() TraceID {
	var t TraceID
	a := splitmix64(idSeed + idSeq.Add(1))
	b := splitmix64(a)
	for i := 0; i < 8; i++ {
		t[i] = byte(a >> (8 * i))
		t[8+i] = byte(b >> (8 * i))
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	a := splitmix64(idSeed ^ idSeq.Add(1)*0x9e3779b97f4a7c15)
	for i := 0; i < 8; i++ {
		s[i] = byte(a >> (8 * i))
	}
	if s.IsZero() {
		s[0] = 1
	}
	return s
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation in a trace. Spans form a tree via parent
// IDs; the root span of a process carries the trace ID minted by (or
// propagated to) that process. A nil *Span is valid and all methods
// no-op, so instrumented code calls unconditionally without nil checks
// and the disabled path stays allocation-free.
type Span struct {
	rec      *SpanRecorder
	traceID  TraceID
	spanID   SpanID
	parentID SpanID
	name     string
	start    time.Time
	sampled  bool
	// sticky is the per-trace always-sample bit, shared by every local
	// span of the trace: flipped on error or slow finish so the whole
	// upward path records even when head sampling said no. Parents
	// finish after children, so a flip at child-finish is seen by every
	// ancestor's End.
	sticky *atomic.Bool

	mu    sync.Mutex
	attrs []Attr
	err   bool
	ended bool
}

type spanKey struct{}

// ContextWithSpan attaches a span to the context.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// TraceID returns the span's trace ID, or the zero ID on nil.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// SpanID returns the span's ID, or the zero ID on nil.
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// SetAttr annotates the span. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value. No-op on nil.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf("%d", v))
}

// SetError marks the span failed and flips the trace's sticky
// always-sample bit so the error's whole path records. No-op on nil or
// nil error.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = true
	s.attrs = append(s.attrs, Attr{Key: "error", Value: err.Error()})
	s.mu.Unlock()
	if s.sticky != nil {
		s.sticky.Store(true)
	}
}

// End finishes the span: a slow or failed span flips the sticky bit,
// then the span is recorded if head sampling or the sticky bit says so.
// Safe to call more than once; later calls no-op. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	err := s.err
	attrs := s.attrs
	s.mu.Unlock()
	r := s.rec
	if r == nil {
		return
	}
	if (err || (r.slowThreshold > 0 && dur >= r.slowThreshold)) && s.sticky != nil {
		s.sticky.Store(true)
	}
	sample := s.sampled || (s.sticky != nil && s.sticky.Load())
	if r.slowThreshold > 0 && dur >= r.slowThreshold && r.logger != nil {
		r.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow span",
			slog.String("span", s.name),
			slog.String("trace_id", s.traceID.String()),
			slog.String("span_id", s.spanID.String()),
			slog.Int64("duration_ms", dur.Milliseconds()),
			slog.Bool("error", err),
		)
	}
	if !sample {
		r.sampledOut.Add(1)
		return
	}
	rec := &SpanRecord{
		TraceID:        s.traceID.String(),
		SpanID:         s.spanID.String(),
		Name:           s.name,
		Process:        r.process,
		StartUnixNanos: s.start.UnixNano(),
		DurationNanos:  int64(dur),
		Error:          err,
	}
	if !s.parentID.IsZero() {
		rec.ParentID = s.parentID.String()
	}
	if len(attrs) > 0 {
		rec.Attrs = attrs
	}
	r.record(rec)
	if s.parentID.IsZero() {
		r.observeRoot(s.name, s.traceID, dur)
	}
}

// SpanRecord is the serialized form of one finished span.
type SpanRecord struct {
	TraceID        string `json:"trace_id"`
	SpanID         string `json:"span_id"`
	ParentID       string `json:"parent_id,omitempty"`
	Name           string `json:"name"`
	Process        string `json:"process,omitempty"`
	StartUnixNanos int64  `json:"start_unix_nanos"`
	DurationNanos  int64  `json:"duration_nanos"`
	Error          bool   `json:"error,omitempty"`
	Attrs          []Attr `json:"attrs,omitempty"`
}

// SpanSet is the exported span document: schema version, the recording
// process, and the spans ordered by start time.
type SpanSet struct {
	Version int          `json:"version"`
	Process string       `json:"process,omitempty"`
	Spans   []SpanRecord `json:"spans"`
}

// Exemplar links a histogram-style aggregate to the one concrete trace
// that best explains it: the slowest recorded root span for a name.
type Exemplar struct {
	Name          string `json:"name"`
	TraceID       string `json:"trace_id"`
	DurationNanos int64  `json:"duration_nanos"`
}

// SpanStats are cumulative recorder counters.
type SpanStats struct {
	Recorded   uint64 `json:"recorded"`
	SampledOut uint64 `json:"sampled_out"`
	Evicted    uint64 `json:"evicted"`
}

// SpanRecorder is a bounded lock-light sink for finished spans: a ring
// of atomic pointers where the (capacity+1)th record overwrites the
// oldest. Head sampling keeps 1-in-N traces; errors and slow spans set a
// sticky per-trace bit that overrides the head decision for every span
// that finishes after the flip. A nil *SpanRecorder is valid: root spans
// come back nil and the whole instrumented path stays allocation-free.
type SpanRecorder struct {
	slots         []atomic.Pointer[SpanRecord]
	seq           atomic.Uint64 // next slot; also total recorded
	process       string
	sampleEvery   uint64 // head-sample 1 in N root spans (1 = all)
	headSeq       atomic.Uint64
	slowThreshold time.Duration
	logger        *slog.Logger

	sampledOut atomic.Uint64

	mu        sync.Mutex
	exemplars map[string]Exemplar
}

// SpanRecorderConfig configures a recorder.
type SpanRecorderConfig struct {
	// Capacity is the ring size in spans (default 4096).
	Capacity int
	// Process names the recording process in serialized spans
	// (e.g. "btrserved").
	Process string
	// SampleEvery head-samples 1 in N new traces; <=1 samples all.
	SampleEvery int
	// SlowThreshold force-samples and warn-logs spans at least this
	// slow; 0 disables the slow path.
	SlowThreshold time.Duration
	// Logger receives slow-span warnings; nil disables logging.
	Logger *slog.Logger
}

// NewSpanRecorder returns a recorder with the given config.
func NewSpanRecorder(cfg SpanRecorderConfig) *SpanRecorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	return &SpanRecorder{
		slots:         make([]atomic.Pointer[SpanRecord], cfg.Capacity),
		process:       cfg.Process,
		sampleEvery:   uint64(cfg.SampleEvery),
		slowThreshold: cfg.SlowThreshold,
		logger:        cfg.Logger,
		exemplars:     make(map[string]Exemplar),
	}
}

// Enabled reports whether the recorder collects anything (is non-nil).
func (r *SpanRecorder) Enabled() bool { return r != nil }

func (r *SpanRecorder) record(rec *SpanRecord) {
	i := r.seq.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(rec)
}

func (r *SpanRecorder) observeRoot(name string, id TraceID, dur time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ex, ok := r.exemplars[name]; !ok || int64(dur) > ex.DurationNanos {
		r.exemplars[name] = Exemplar{Name: name, TraceID: id.String(), DurationNanos: int64(dur)}
	}
}

// Exemplars returns the slowest recorded root span per name, sorted by
// name. Empty on nil.
func (r *SpanRecorder) Exemplars() []Exemplar {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Exemplar, 0, len(r.exemplars))
	for _, ex := range r.exemplars {
		out = append(out, ex)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats returns cumulative counters. Zero on nil.
func (r *SpanRecorder) Stats() SpanStats {
	if r == nil {
		return SpanStats{}
	}
	rec := r.seq.Load()
	var evicted uint64
	if n := uint64(len(r.slots)); rec > n {
		evicted = rec - n
	}
	return SpanStats{Recorded: rec, SampledOut: r.sampledOut.Load(), Evicted: evicted}
}

// WritePromLines renders the recorder's counters as Prometheus text
// exposition under the given metric prefix (e.g. "btrserved" yields
// btrserved_spans_recorded_total and friends). No-op on nil.
func (r *SpanRecorder) WritePromLines(w io.Writer, prefix string) {
	if r == nil {
		return
	}
	st := r.Stats()
	write := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %d\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	write("spans_recorded_total", "Spans recorded into the ring buffer.", st.Recorded)
	write("spans_sampled_out_total", "Finished spans dropped by head sampling.", st.SampledOut)
	write("spans_evicted_total", "Recorded spans overwritten by newer ones.", st.Evicted)
}

// SpanFilter selects spans from a snapshot.
type SpanFilter struct {
	// TraceID keeps only spans of that trace when non-empty.
	TraceID string
	// MinDuration keeps only spans at least that slow.
	MinDuration time.Duration
}

// Snapshot returns the retained spans matching the filter as a SpanSet
// ordered by start time (ties by span ID, so output is deterministic).
// Returns an empty document on nil.
func (r *SpanRecorder) Snapshot(f SpanFilter) SpanSet {
	out := SpanSet{Version: SpanVersion}
	if r == nil {
		return out
	}
	out.Process = r.process
	for i := range r.slots {
		rec := r.slots[i].Load()
		if rec == nil {
			continue
		}
		if f.TraceID != "" && rec.TraceID != f.TraceID {
			continue
		}
		if f.MinDuration > 0 && rec.DurationNanos < int64(f.MinDuration) {
			continue
		}
		out.Spans = append(out.Spans, *rec)
	}
	sort.Slice(out.Spans, func(i, j int) bool {
		if out.Spans[i].StartUnixNanos != out.Spans[j].StartUnixNanos {
			return out.Spans[i].StartUnixNanos < out.Spans[j].StartUnixNanos
		}
		return out.Spans[i].SpanID < out.Spans[j].SpanID
	})
	return out
}

// StartRoot opens a new trace: mints trace and span IDs, makes the head
// sampling decision, and attaches the span to the context. On a nil
// recorder it returns (ctx, nil) without allocating.
func (r *SpanRecorder) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	s := &Span{
		rec:     r,
		traceID: newTraceID(),
		spanID:  newSpanID(),
		name:    name,
		start:   time.Now(),
		sampled: r.headSeq.Add(1)%r.sampleEvery == 0,
		sticky:  new(atomic.Bool),
	}
	return ContextWithSpan(ctx, s), s
}

// StartRemote opens a server span continuing the trace described by a
// W3C traceparent header value. An empty or malformed header starts a
// fresh root trace instead; a propagated sampled flag overrides the
// local head-sampling decision so cross-process traces stay whole. On a
// nil recorder it returns (ctx, nil).
func (r *SpanRecorder) StartRemote(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	traceID, parentID, sampled, ok := ParseTraceparent(traceparent)
	if !ok {
		return r.StartRoot(ctx, name)
	}
	s := &Span{
		rec:      r,
		traceID:  traceID,
		spanID:   newSpanID(),
		parentID: parentID,
		name:     name,
		start:    time.Now(),
		sampled:  sampled,
		sticky:   new(atomic.Bool),
	}
	return ContextWithSpan(ctx, s), s
}

// StartChild opens a child of the context's span, inheriting its trace,
// recorder, sampling decision, and sticky bit. With no span in the
// context it returns (ctx, nil) without allocating — this is the hot
// path's disabled branch.
func StartChild(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{
		rec:      parent.rec,
		traceID:  parent.traceID,
		spanID:   newSpanID(),
		parentID: parent.spanID,
		name:     name,
		start:    time.Now(),
		sampled:  parent.sampled,
		sticky:   parent.sticky,
	}
	return ContextWithSpan(ctx, s), s
}

// Traceparent renders the span as a W3C traceparent header value, with
// the sampled flag set when head sampling or the sticky bit say the
// trace records. Empty on nil.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	flags := "00"
	if s.sampled || (s.sticky != nil && s.sticky.Load()) {
		flags = "01"
	}
	return "00-" + s.traceID.String() + "-" + s.spanID.String() + "-" + flags
}

// InjectTraceparent sets the traceparent header (and the request-ID
// header, when the context carries one) on an outbound request so the
// receiving server continues this trace. No-op without a span.
func InjectTraceparent(ctx context.Context, h http.Header) {
	if s := SpanFromContext(ctx); s != nil {
		h.Set(TraceparentHeader, s.Traceparent())
	}
	if id := RequestIDFrom(ctx); id != "" {
		h.Set(RequestIDHeader, id)
	}
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex trace>-<16 hex span>-<2 hex flags>"). ok is false on any
// malformed or all-zero field.
func ParseTraceparent(v string) (traceID TraceID, spanID SpanID, sampled bool, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || parts[0] != "00" ||
		len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(traceID[:], []byte(parts[1])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(spanID[:], []byte(parts[2])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(parts[3])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if traceID.IsZero() || spanID.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return traceID, spanID, flags[0]&1 == 1, true
}

// Validate checks the span set against the documented schema
// (OBSERVABILITY.md): version, ID shapes, positive timings, and — for
// spans whose parent is in the set — child-inside-parent timing. Used by
// the spans smoke gates and tests.
func (ss SpanSet) Validate() error {
	if ss.Version != SpanVersion {
		return fmt.Errorf("spans: version %d, want %d", ss.Version, SpanVersion)
	}
	byID := make(map[string]*SpanRecord, len(ss.Spans))
	for i := range ss.Spans {
		s := &ss.Spans[i]
		where := fmt.Sprintf("span %d (%s)", i, s.Name)
		if !isHex(s.TraceID, 32) {
			return fmt.Errorf("spans: %s: bad trace_id %q", where, s.TraceID)
		}
		if !isHex(s.SpanID, 16) {
			return fmt.Errorf("spans: %s: bad span_id %q", where, s.SpanID)
		}
		if s.ParentID != "" && !isHex(s.ParentID, 16) {
			return fmt.Errorf("spans: %s: bad parent_id %q", where, s.ParentID)
		}
		if s.Name == "" {
			return fmt.Errorf("spans: span %d: empty name", i)
		}
		if s.StartUnixNanos <= 0 || s.DurationNanos < 0 {
			return fmt.Errorf("spans: %s: bad timing start=%d dur=%d", where, s.StartUnixNanos, s.DurationNanos)
		}
		byID[s.SpanID] = s
	}
	for i := range ss.Spans {
		s := &ss.Spans[i]
		p, ok := byID[s.ParentID]
		if s.ParentID == "" || !ok {
			continue
		}
		if p.TraceID != s.TraceID {
			return fmt.Errorf("spans: span %d (%s): parent %s in different trace", i, s.Name, s.ParentID)
		}
		if s.StartUnixNanos < p.StartUnixNanos {
			return fmt.Errorf("spans: span %d (%s): starts before parent %s", i, s.Name, p.Name)
		}
	}
	return nil
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// RenderTree writes the span set as indented duration trees, one
// section per trace ordered by the trace's earliest span. Spans whose
// parent is missing from the set (evicted, sampled out, or recorded by
// the other process) render as additional roots.
func (ss SpanSet) RenderTree(w io.Writer) {
	children := make(map[string][]*SpanRecord)
	byID := make(map[string]*SpanRecord)
	var roots []*SpanRecord
	traceStart := make(map[string]int64)
	for i := range ss.Spans {
		s := &ss.Spans[i]
		byID[s.SpanID] = s
		if t, ok := traceStart[s.TraceID]; !ok || s.StartUnixNanos < t {
			traceStart[s.TraceID] = s.StartUnixNanos
		}
	}
	for i := range ss.Spans {
		s := &ss.Spans[i]
		if s.ParentID != "" && byID[s.ParentID] != nil {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	sort.SliceStable(roots, func(i, j int) bool {
		ti, tj := roots[i].TraceID, roots[j].TraceID
		if ti != tj {
			if traceStart[ti] != traceStart[tj] {
				return traceStart[ti] < traceStart[tj]
			}
			return ti < tj
		}
		return roots[i].StartUnixNanos < roots[j].StartUnixNanos
	})
	lastTrace := ""
	for _, root := range roots {
		if root.TraceID != lastTrace {
			fmt.Fprintf(w, "trace %s\n", root.TraceID)
			lastTrace = root.TraceID
		}
		renderSpan(w, root, children, 1)
	}
}

func renderSpan(w io.Writer, s *SpanRecord, children map[string][]*SpanRecord, indent int) {
	pad := strings.Repeat("  ", indent)
	fmt.Fprintf(w, "%s%-28s %10s", pad, s.Name, time.Duration(s.DurationNanos).Round(time.Microsecond))
	if s.Process != "" {
		fmt.Fprintf(w, "  [%s]", s.Process)
	}
	if s.Error {
		fmt.Fprint(w, "  ERROR")
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(w, "  %s=%s", a.Key, a.Value)
	}
	fmt.Fprintln(w)
	kids := children[s.SpanID]
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].StartUnixNanos < kids[j].StartUnixNanos })
	for _, c := range kids {
		renderSpan(w, c, children, indent+1)
	}
}
