package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// Request IDs are "r<start>-<seq>": a per-process hex prefix (startup
// time) plus an atomic sequence number — unique within and across
// btrserved restarts without needing crypto randomness, and cheap enough
// to mint on every request.
var (
	ridPrefix = fmt.Sprintf("r%08x", uint32(time.Now().UnixNano()))
	ridSeq    atomic.Uint64
)

// NewRequestID mints a process-unique request ID.
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", ridPrefix, ridSeq.Add(1))
}

type ridKey struct{}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// NewLogger returns a JSON-lines slog logger writing to w. JSON (not
// text) so concurrent request logs stay machine-parseable line by line —
// the slog handler serializes writes, and the race tests assert no
// interleaved-corrupt records.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}
