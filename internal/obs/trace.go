package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"btrblocks/internal/core"
)

// TraceVersion identifies the decision-trace JSON schema documented in
// OBSERVABILITY.md. Bump it when a field changes meaning.
const TraceVersion = 1

// Candidate is one scheme the picker scored for a stream: its
// sample-estimated compression ratio and whether it won the pick.
type Candidate struct {
	Scheme         string  `json:"scheme"`
	EstimatedRatio float64 `json:"estimated_ratio"`
	// SampleBytes is the size of the trial encoding of the sample (0 when
	// the candidate was scored without a trial, e.g. OneValue fast path).
	SampleBytes int  `json:"sample_bytes,omitempty"`
	Won         bool `json:"won,omitempty"`
}

// Node is one scheme-selection decision in a block's cascade tree: the
// stream it applies to, the winner, every candidate scored, and the
// sub-stream decisions the winner caused.
type Node struct {
	// Depth is the cascade level: 0 for the block's root stream.
	Depth int `json:"depth"`
	// Kind is the stream's value kind ("int", "int64", "double", "string").
	Kind string `json:"kind"`
	// Scheme is the winning scheme's name.
	Scheme string `json:"scheme"`
	// Values, InputBytes and OutputBytes describe the stream and its
	// encoding (OutputBytes includes the scheme tag byte).
	Values      int `json:"values"`
	InputBytes  int `json:"input_bytes"`
	OutputBytes int `json:"output_bytes"`
	// EstimatedRatio is the sample estimate that won the pick;
	// ActualRatio is InputBytes/OutputBytes as achieved.
	EstimatedRatio float64 `json:"estimated_ratio"`
	ActualRatio    float64 `json:"actual_ratio"`
	// PickNanos is the wall time of the selection (statistics, sampling,
	// trial encodes).
	PickNanos int64 `json:"pick_nanos"`
	// Candidates lists every scheme scored for this stream, in
	// evaluation order, with exactly one Won entry.
	Candidates []Candidate `json:"candidates,omitempty"`
	// Children are the winner's compressed sub-streams (RLE lengths,
	// dictionary codes, …), in encoding order.
	Children []*Node `json:"children,omitempty"`
}

// BlockTrace is the decision trace of one compressed block.
type BlockTrace struct {
	Column string `json:"column"`
	Block  int    `json:"block"`
	Type   string `json:"type"`
	Rows   int    `json:"rows"`
	// CascadeDepth is the number of cascade levels used (1 = the root
	// scheme had no compressed sub-streams).
	CascadeDepth  int   `json:"cascade_depth"`
	CompressNanos int64 `json:"compress_nanos"`
	Root          *Node `json:"root"`
}

// Trace is the exported decision-trace document: schema version plus one
// entry per block, ordered by (column, block).
type Trace struct {
	Version int          `json:"version"`
	Blocks  []BlockTrace `json:"blocks"`
}

// BlockTraceFromDecisions reconstructs a block's cascade tree from the
// post-order decision trail delivered by core's OnDecision hook. The
// post-order invariant (a stream's sub-stream decisions arrive before
// its own) plus the per-decision level is enough to rebuild the tree: a
// decision at level L adopts the trailing already-built nodes deeper
// than L as its children.
func BlockTraceFromDecisions(column string, block int, typ string, rows int, compressNanos int64, decisions []core.Decision) BlockTrace {
	bt := BlockTrace{
		Column:        column,
		Block:         block,
		Type:          typ,
		Rows:          rows,
		CompressNanos: compressNanos,
	}
	var stack []*Node
	for _, d := range decisions {
		n := &Node{
			Depth:          d.Level,
			Kind:           d.Kind.String(),
			Scheme:         d.Code.String(),
			Values:         d.Values,
			InputBytes:     d.InputBytes,
			OutputBytes:    d.OutputBytes,
			EstimatedRatio: d.EstimatedRatio,
			PickNanos:      d.PickNanos,
		}
		if d.OutputBytes > 0 {
			n.ActualRatio = float64(d.InputBytes) / float64(d.OutputBytes)
		}
		for _, c := range d.Candidates {
			n.Candidates = append(n.Candidates, Candidate{
				Scheme:         c.Code.String(),
				EstimatedRatio: c.EstimatedRatio,
				SampleBytes:    c.SampleBytes,
				Won:            c.Code == d.Code,
			})
		}
		if d.Level+1 > bt.CascadeDepth {
			bt.CascadeDepth = d.Level + 1
		}
		j := len(stack)
		for j > 0 && stack[j-1].Depth > d.Level {
			j--
		}
		n.Children = append(n.Children, stack[j:]...)
		stack = append(stack[:j], n)
	}
	if len(stack) == 1 {
		bt.Root = stack[0]
	} else if len(stack) > 1 {
		// Defensive: a malformed trail (several top-level decisions) is
		// wrapped rather than dropped so nothing observed is lost.
		bt.Root = &Node{Depth: stack[0].Depth, Kind: stack[0].Kind, Scheme: stack[0].Scheme, Children: stack}
	}
	return bt
}

// Tracer is a thread-safe sink for block decision traces. Attach one to
// Options.Trace and read it back with Snapshot. A nil *Tracer is valid
// and records nothing, so the compression path can call Record
// unconditionally behind one pointer check.
type Tracer struct {
	mu     sync.Mutex
	blocks []BlockTrace
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether the tracer collects anything (is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Record adds one block trace. Safe for concurrent use; no-op on nil.
func (t *Tracer) Record(bt BlockTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.blocks = append(t.blocks, bt)
}

// Reset discards all recorded traces.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.blocks = nil
}

// Snapshot returns the recorded traces as a Trace document sorted by
// (column, block), so concurrent recording yields deterministic output.
// Returns an empty document on a nil receiver.
func (t *Tracer) Snapshot() Trace {
	out := Trace{Version: TraceVersion}
	if t == nil {
		return out
	}
	t.mu.Lock()
	out.Blocks = append([]BlockTrace(nil), t.blocks...)
	t.mu.Unlock()
	sort.SliceStable(out.Blocks, func(i, j int) bool {
		if out.Blocks[i].Column != out.Blocks[j].Column {
			return out.Blocks[i].Column < out.Blocks[j].Column
		}
		return out.Blocks[i].Block < out.Blocks[j].Block
	})
	return out
}

// RenderTree writes the trace as a human-readable indented tree, one
// section per block: the winning cascade with per-stream byte accounting
// and the candidate estimates behind every pick.
func (tr Trace) RenderTree(w io.Writer) {
	for i := range tr.Blocks {
		b := &tr.Blocks[i]
		fmt.Fprintf(w, "%s block %d (%s, %d rows, depth %d)\n",
			b.Column, b.Block, b.Type, b.Rows, b.CascadeDepth)
		if b.Root != nil {
			renderNode(w, b.Root, 1)
		}
	}
}

func renderNode(w io.Writer, n *Node, indent int) {
	pad := strings.Repeat("  ", indent)
	fmt.Fprintf(w, "%s%s %s: %d values, %d -> %d bytes (est %.2fx, actual %.2fx)\n",
		pad, n.Kind, n.Scheme, n.Values, n.InputBytes, n.OutputBytes, n.EstimatedRatio, n.ActualRatio)
	for _, c := range n.Candidates {
		marker := " "
		if c.Won {
			marker = "*"
		}
		fmt.Fprintf(w, "%s  %s %-14s est %.2fx", pad, marker, c.Scheme, c.EstimatedRatio)
		if c.SampleBytes > 0 {
			fmt.Fprintf(w, " (sample %d B)", c.SampleBytes)
		}
		fmt.Fprintln(w)
	}
	for _, child := range n.Children {
		renderNode(w, child, indent+1)
	}
}

// Validate checks the trace against the documented schema
// (OBSERVABILITY.md): version, per-block identity fields, tree depth
// consistency, valid scheme names, and the exactly-one-winner candidate
// invariant. Used by the `btrblocks trace -validate` smoke gate and the
// trace tests.
func (tr Trace) Validate() error {
	if tr.Version != TraceVersion {
		return fmt.Errorf("trace: version %d, want %d", tr.Version, TraceVersion)
	}
	for i := range tr.Blocks {
		b := &tr.Blocks[i]
		where := fmt.Sprintf("block %d (%s/%d)", i, b.Column, b.Block)
		if b.Type == "" {
			return fmt.Errorf("trace: %s: empty type", where)
		}
		if b.Rows <= 0 {
			return fmt.Errorf("trace: %s: rows %d", where, b.Rows)
		}
		if b.Root == nil {
			return fmt.Errorf("trace: %s: missing root", where)
		}
		if b.Root.Depth != 0 {
			return fmt.Errorf("trace: %s: root depth %d", where, b.Root.Depth)
		}
		maxDepth := 0
		if err := validateNode(b.Root, where, &maxDepth); err != nil {
			return err
		}
		if maxDepth+1 != b.CascadeDepth {
			return fmt.Errorf("trace: %s: cascade_depth %d, tree depth %d", where, b.CascadeDepth, maxDepth+1)
		}
	}
	return nil
}

func validateNode(n *Node, where string, maxDepth *int) error {
	if n.Depth > *maxDepth {
		*maxDepth = n.Depth
	}
	if _, ok := core.CodeFromName(n.Scheme); !ok {
		return fmt.Errorf("trace: %s: unknown scheme %q at depth %d", where, n.Scheme, n.Depth)
	}
	if n.Values <= 0 || n.OutputBytes <= 0 {
		return fmt.Errorf("trace: %s: non-positive values/output at depth %d", where, n.Depth)
	}
	won := 0
	for _, c := range n.Candidates {
		if _, ok := core.CodeFromName(c.Scheme); !ok {
			return fmt.Errorf("trace: %s: unknown candidate %q at depth %d", where, c.Scheme, n.Depth)
		}
		if c.EstimatedRatio <= 0 {
			return fmt.Errorf("trace: %s: candidate %s estimate %g at depth %d", where, c.Scheme, c.EstimatedRatio, n.Depth)
		}
		if c.Won {
			won++
			if c.Scheme != n.Scheme {
				return fmt.Errorf("trace: %s: winner %q != node scheme %q at depth %d", where, c.Scheme, n.Scheme, n.Depth)
			}
		}
	}
	// Uncompressed can win without being listed (the depth-0 fallthrough
	// records no candidates at all); any other winner must be marked.
	if len(n.Candidates) > 0 && won != 1 && n.Scheme != core.CodeUncompressed.String() {
		return fmt.Errorf("trace: %s: %d winners among candidates at depth %d", where, won, n.Depth)
	}
	for _, c := range n.Children {
		if c.Depth != n.Depth+1 {
			return fmt.Errorf("trace: %s: child depth %d under depth %d", where, c.Depth, n.Depth)
		}
		if err := validateNode(c, where, maxDepth); err != nil {
			return err
		}
	}
	return nil
}
