package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNilSafety(t *testing.T) {
	var r *SpanRecorder
	if r.Enabled() {
		t.Fatal("nil recorder enabled")
	}
	ctx, s := r.StartRoot(context.Background(), "root")
	if s != nil {
		t.Fatal("nil recorder returned a span")
	}
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 7)
	s.SetError(errors.New("x"))
	s.End()
	if s.Traceparent() != "" {
		t.Fatal("nil span traceparent")
	}
	if got := s.TraceID(); !got.IsZero() {
		t.Fatal("nil span trace ID")
	}
	_, c := StartChild(ctx, "child")
	if c != nil {
		t.Fatal("child of no-span context")
	}
	if got := r.Snapshot(SpanFilter{}); len(got.Spans) != 0 || got.Version != SpanVersion {
		t.Fatalf("nil snapshot: %+v", got)
	}
	if ex := r.Exemplars(); ex != nil {
		t.Fatalf("nil exemplars: %v", ex)
	}
	if st := r.Stats(); st != (SpanStats{}) {
		t.Fatalf("nil stats: %+v", st)
	}
}

// StartChild on a context without a span must not allocate: that is the
// disabled tracing path on the decode hot loop.
func TestStartChildDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		_, s := StartChild(ctx, "decode")
		s.SetAttrInt("i", 1)
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled StartChild allocates %v per run", allocs)
	}
}

func TestSpanRecordAndTree(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Capacity: 16, Process: "test"})
	ctx, root := r.StartRoot(context.Background(), "ingest.append")
	root.SetAttr("table", "t1")
	ctx2, c1 := StartChild(ctx, "wal.append")
	c1.End()
	_, c2 := StartChild(ctx2, "wal.frame")
	c2.End()
	root.End()

	ss := r.Snapshot(SpanFilter{})
	if len(ss.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(ss.Spans))
	}
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
	if ss.Process != "test" {
		t.Fatalf("process %q", ss.Process)
	}
	for _, s := range ss.Spans {
		if s.TraceID != root.TraceID().String() {
			t.Fatalf("span %s trace %s != root %s", s.Name, s.TraceID, root.TraceID())
		}
	}
	// Filter by trace ID.
	if got := r.Snapshot(SpanFilter{TraceID: root.TraceID().String()}); len(got.Spans) != 3 {
		t.Fatalf("trace filter: %d spans", len(got.Spans))
	}
	if got := r.Snapshot(SpanFilter{TraceID: strings.Repeat("0", 31) + "1"}); len(got.Spans) != 0 {
		t.Fatalf("other-trace filter: %d spans", len(got.Spans))
	}
	var buf bytes.Buffer
	ss.RenderTree(&buf)
	out := buf.String()
	if !strings.Contains(out, "trace "+root.TraceID().String()) {
		t.Fatalf("tree missing trace header:\n%s", out)
	}
	// wal.frame is nested two levels below the root.
	if !strings.Contains(out, "      wal.frame") {
		t.Fatalf("tree missing nested child:\n%s", out)
	}
	if !strings.Contains(out, "table=t1") {
		t.Fatalf("tree missing attr:\n%s", out)
	}
}

// The ring must evict strictly oldest-first: after capacity+k records,
// exactly the first k are gone.
func TestSpanRingEvictionOrder(t *testing.T) {
	const cap, extra = 8, 5
	r := NewSpanRecorder(SpanRecorderConfig{Capacity: cap, Process: "test"})
	for i := 0; i < cap+extra; i++ {
		_, s := r.StartRoot(context.Background(), fmt.Sprintf("span-%02d", i))
		s.End()
	}
	ss := r.Snapshot(SpanFilter{})
	if len(ss.Spans) != cap {
		t.Fatalf("retained %d spans, want %d", len(ss.Spans), cap)
	}
	names := make(map[string]bool)
	for _, s := range ss.Spans {
		names[s.Name] = true
	}
	for i := 0; i < extra; i++ {
		if names[fmt.Sprintf("span-%02d", i)] {
			t.Fatalf("span-%02d not evicted; retained %v", i, names)
		}
	}
	for i := extra; i < cap+extra; i++ {
		if !names[fmt.Sprintf("span-%02d", i)] {
			t.Fatalf("span-%02d missing; retained %v", i, names)
		}
	}
	st := r.Stats()
	if st.Recorded != cap+extra || st.Evicted != extra {
		t.Fatalf("stats %+v", st)
	}
}

func TestHeadSampling(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Capacity: 64, SampleEvery: 4})
	for i := 0; i < 16; i++ {
		_, s := r.StartRoot(context.Background(), "op")
		s.End()
	}
	ss := r.Snapshot(SpanFilter{})
	if len(ss.Spans) != 4 {
		t.Fatalf("sampled %d of 16 at 1-in-4", len(ss.Spans))
	}
	if st := r.Stats(); st.SampledOut != 12 {
		t.Fatalf("sampled_out %d", st.SampledOut)
	}
}

// An error flips the sticky bit: the erroring span and every span of the
// trace finishing after it record even when head sampling said no.
func TestStickyBitOnError(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Capacity: 64, SampleEvery: 1 << 30})
	ctx, root := r.StartRoot(context.Background(), "root")
	_, ok := StartChild(ctx, "fine")
	ok.End() // finishes before the flip: lost, by design
	_, bad := StartChild(ctx, "bad")
	bad.SetError(errors.New("boom"))
	bad.End()
	root.End()
	ss := r.Snapshot(SpanFilter{})
	got := map[string]bool{}
	for _, s := range ss.Spans {
		got[s.Name] = true
	}
	if !got["bad"] || !got["root"] {
		t.Fatalf("sticky bit lost error path: %v", got)
	}
	if got["fine"] {
		t.Fatalf("span finished before the flip was recorded: %v", got)
	}
	for _, s := range ss.Spans {
		if s.Name == "bad" && !s.Error {
			t.Fatal("bad span not marked error")
		}
	}
}

func TestStickyBitOnSlowSpan(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	r := NewSpanRecorder(SpanRecorderConfig{
		Capacity: 64, SampleEvery: 1 << 30, SlowThreshold: time.Nanosecond, Logger: logger,
	})
	ctx, root := r.StartRoot(context.Background(), "root")
	_, c := StartChild(ctx, "slow")
	time.Sleep(time.Millisecond)
	c.End()
	root.End()
	ss := r.Snapshot(SpanFilter{})
	if len(ss.Spans) != 2 {
		t.Fatalf("slow span did not force-sample: %d spans", len(ss.Spans))
	}
	var rec struct {
		Msg     string `json:"msg"`
		Span    string `json:"span"`
		TraceID string `json:"trace_id"`
	}
	line, _, _ := strings.Cut(logBuf.String(), "\n")
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow log not JSON: %v: %q", err, line)
	}
	if rec.Msg != "slow span" || rec.Span != "slow" || rec.TraceID != root.TraceID().String() {
		t.Fatalf("slow log record: %+v", rec)
	}
}

func TestMinDurationFilter(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Capacity: 16})
	_, fast := r.StartRoot(context.Background(), "fast")
	fast.End()
	_, slow := r.StartRoot(context.Background(), "slow")
	time.Sleep(2 * time.Millisecond)
	slow.End()
	ss := r.Snapshot(SpanFilter{MinDuration: time.Millisecond})
	if len(ss.Spans) != 1 || ss.Spans[0].Name != "slow" {
		t.Fatalf("min-duration filter: %+v", ss.Spans)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Capacity: 16, Process: "a"})
	ctx, s := r.StartRoot(context.Background(), "client")
	tp := s.Traceparent()
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q", tp)
	}
	traceID, parentID, sampled, ok := ParseTraceparent(tp)
	if !ok || !sampled {
		t.Fatalf("parse %q: ok=%v sampled=%v", tp, ok, sampled)
	}
	if traceID != s.TraceID() || parentID != s.SpanID() {
		t.Fatalf("round trip: got %s/%s want %s/%s", traceID, parentID, s.TraceID(), s.SpanID())
	}

	// Inject carries both headers.
	ctx = WithRequestID(ctx, "r1234-000001")
	h := make(http.Header)
	InjectTraceparent(ctx, h)
	if h.Get(TraceparentHeader) != tp {
		t.Fatalf("injected %q, want %q", h.Get(TraceparentHeader), tp)
	}
	if h.Get(RequestIDHeader) != "r1234-000001" {
		t.Fatalf("request ID header %q", h.Get(RequestIDHeader))
	}

	// Remote side continues the same trace.
	r2 := NewSpanRecorder(SpanRecorderConfig{Capacity: 16, Process: "b", SampleEvery: 1 << 30})
	_, srv := r2.StartRemote(context.Background(), "server", tp)
	srv.End()
	s.End()
	got := r2.Snapshot(SpanFilter{})
	if len(got.Spans) != 1 {
		t.Fatalf("remote did not honor sampled flag: %d spans", len(got.Spans))
	}
	if got.Spans[0].TraceID != s.TraceID().String() {
		t.Fatalf("remote trace %s != %s", got.Spans[0].TraceID, s.TraceID())
	}
	if got.Spans[0].ParentID != s.SpanID().String() {
		t.Fatalf("remote parent %s != %s", got.Spans[0].ParentID, s.SpanID())
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"01-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01", // unknown version
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("b", 16) + "-01", // zero trace
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero span
		"00-" + strings.Repeat("g", 32) + "-" + strings.Repeat("b", 16) + "-01", // non-hex
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16),         // missing flags
	}
	for _, v := range bad {
		if _, _, _, ok := ParseTraceparent(v); ok {
			t.Fatalf("accepted malformed %q", v)
		}
	}
	// Malformed header starts a fresh root rather than dropping the span.
	r := NewSpanRecorder(SpanRecorderConfig{Capacity: 4})
	_, s := r.StartRemote(context.Background(), "srv", "garbage")
	if s == nil || s.TraceID().IsZero() {
		t.Fatal("StartRemote with garbage did not start a root")
	}
	s.End()
}

func TestSpanSetValidateRejects(t *testing.T) {
	tid := strings.Repeat("a", 32)
	good := SpanRecord{TraceID: tid, SpanID: strings.Repeat("b", 16), Name: "x", StartUnixNanos: 10, DurationNanos: 1}
	cases := []struct {
		name string
		ss   SpanSet
	}{
		{"version", SpanSet{Version: 99, Spans: []SpanRecord{good}}},
		{"trace id", SpanSet{Version: SpanVersion, Spans: []SpanRecord{{TraceID: "zz", SpanID: good.SpanID, Name: "x", StartUnixNanos: 1}}}},
		{"span id", SpanSet{Version: SpanVersion, Spans: []SpanRecord{{TraceID: tid, SpanID: "short", Name: "x", StartUnixNanos: 1}}}},
		{"empty name", SpanSet{Version: SpanVersion, Spans: []SpanRecord{{TraceID: tid, SpanID: good.SpanID, StartUnixNanos: 1}}}},
		{"timing", SpanSet{Version: SpanVersion, Spans: []SpanRecord{{TraceID: tid, SpanID: good.SpanID, Name: "x", StartUnixNanos: 0}}}},
		{"cross-trace parent", SpanSet{Version: SpanVersion, Spans: []SpanRecord{
			good,
			{TraceID: strings.Repeat("c", 32), SpanID: strings.Repeat("d", 16), ParentID: good.SpanID, Name: "y", StartUnixNanos: 11, DurationNanos: 1},
		}}},
		{"child before parent", SpanSet{Version: SpanVersion, Spans: []SpanRecord{
			good,
			{TraceID: tid, SpanID: strings.Repeat("d", 16), ParentID: good.SpanID, Name: "y", StartUnixNanos: 5, DurationNanos: 1},
		}}},
	}
	for _, c := range cases {
		if err := c.ss.Validate(); err == nil {
			t.Fatalf("%s: validated", c.name)
		}
	}
	if err := (SpanSet{Version: SpanVersion, Spans: []SpanRecord{good}}).Validate(); err != nil {
		t.Fatalf("good set rejected: %v", err)
	}
}

// Concurrent recording from many goroutines must be race-free and lose
// nothing the ring can hold (run under -race in CI).
func TestSpanRecorderConcurrent(t *testing.T) {
	const perG = 50
	workers := runtime.GOMAXPROCS(0)
	r := NewSpanRecorder(SpanRecorderConfig{Capacity: workers*perG + 16, SlowThreshold: time.Hour})
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, root := r.StartRoot(context.Background(), fmt.Sprintf("g%d", g))
				_, c := StartChild(ctx, "child")
				c.SetAttrInt("i", int64(i))
				c.End()
				root.End()
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if want := uint64(workers * perG * 2); st.Recorded != want {
		t.Fatalf("recorded %d, want %d", st.Recorded, want)
	}
	if err := r.Snapshot(SpanFilter{}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// The recorder runs no goroutines; recording and snapshotting must not
// leave any behind.
func TestSpanRecorderNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewSpanRecorder(SpanRecorderConfig{Capacity: 32})
	for i := 0; i < 100; i++ {
		ctx, root := r.StartRoot(context.Background(), "op")
		_, c := StartChild(ctx, "child")
		c.End()
		root.End()
		r.Snapshot(SpanFilter{})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines %d > %d before", runtime.NumGoroutine(), before)
}

func TestExemplars(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Capacity: 16})
	_, a := r.StartRoot(context.Background(), "scan")
	time.Sleep(2 * time.Millisecond)
	a.End()
	_, b := r.StartRoot(context.Background(), "scan")
	b.End()
	_, c := r.StartRoot(context.Background(), "append")
	c.End()
	ex := r.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars %+v", ex)
	}
	if ex[0].Name != "append" || ex[1].Name != "scan" {
		t.Fatalf("exemplar order %+v", ex)
	}
	if ex[1].TraceID != a.TraceID().String() {
		t.Fatalf("scan exemplar %s, want slowest %s", ex[1].TraceID, a.TraceID())
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	r := NewSpanRecorder(SpanRecorderConfig{Capacity: 16})
	_, s := r.StartRoot(context.Background(), "op")
	s.End()
	s.End()
	if st := r.Stats(); st.Recorded != 1 {
		t.Fatalf("double End recorded %d", st.Recorded)
	}
}
