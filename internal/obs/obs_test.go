package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"btrblocks/internal/core"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow: p50 must land in the fast range,
	// p99 in the slow range.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(300 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if p50 := h.Quantile(0.50); p50 > 10*time.Millisecond {
		t.Errorf("p50 = %v, want <= 10ms", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 100*time.Millisecond {
		t.Errorf("p99 = %v, want >= 100ms", p99)
	}
	if sum := h.Sum(); sum != 90*100*time.Microsecond+10*300*time.Millisecond {
		t.Errorf("Sum = %v", sum)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.P50Nanos <= 0 || s.P99Nanos < s.P50Nanos {
		t.Errorf("bad snapshot: %+v", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	if s := h.Snapshot(); s.Count != 0 || s.MeanNano != 0 {
		t.Errorf("empty snapshot: %+v", s)
	}
}

func TestHistogramPromLines(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(time.Hour) // overflow bucket

	var b bytes.Buffer
	h.WritePromLines(&b, "x_seconds", `route="/v1/block"`)
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{route="/v1/block",le="+Inf"} 2`,
		`x_seconds_count{route="/v1/block"} 2`,
		`x_seconds_sum{route="/v1/block"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the last finite bucket holds 1 (the
	// 1ms observation), +Inf holds 2.
	if !strings.Contains(out, `le="4.194304"} 1`) {
		t.Errorf("expected last finite bucket count 1:\n%s", out)
	}

	b.Reset()
	h.WritePromLines(&b, "y_seconds", "")
	if !strings.Contains(b.String(), `y_seconds_bucket{le="+Inf"} 2`) ||
		!strings.Contains(b.String(), "y_seconds_count 2") {
		t.Errorf("unlabeled prom output wrong:\n%s", b.String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}

// decisionsForTest builds the post-order trail of a Dict cascade:
//
//	root Dict (level 0)
//	├── dict values FastBP (level 1)
//	└── codes RLE (level 1)
//	    ├── run values FastBP (level 2)
//	    └── run lengths OneValue (level 2)
func decisionsForTest() []core.Decision {
	cand := func(codes ...core.Code) []core.CandidateEstimate {
		out := make([]core.CandidateEstimate, len(codes))
		for i, c := range codes {
			out[i] = core.CandidateEstimate{Code: c, EstimatedRatio: float64(i + 1), SampleBytes: 10}
		}
		return out
	}
	return []core.Decision{
		{Kind: core.KindInt, Level: 1, Code: core.CodeFastBP, Values: 10, InputBytes: 40, OutputBytes: 20,
			EstimatedRatio: 2, Candidates: cand(core.CodeUncompressed, core.CodeFastBP)},
		{Kind: core.KindInt, Level: 2, Code: core.CodeFastBP, Values: 5, InputBytes: 20, OutputBytes: 10,
			EstimatedRatio: 2, Candidates: cand(core.CodeUncompressed, core.CodeFastBP)},
		{Kind: core.KindInt, Level: 2, Code: core.CodeOneValue, Values: 5, InputBytes: 20, OutputBytes: 9,
			EstimatedRatio: 2.2, Candidates: cand(core.CodeOneValue)},
		{Kind: core.KindInt, Level: 1, Code: core.CodeRLE, Values: 100, InputBytes: 400, OutputBytes: 40,
			EstimatedRatio: 9, Candidates: cand(core.CodeUncompressed, core.CodeFastBP, core.CodeRLE)},
		{Kind: core.KindInt, Level: 0, Code: core.CodeDict, Values: 100, InputBytes: 400, OutputBytes: 80,
			EstimatedRatio: 5, Candidates: cand(core.CodeUncompressed, core.CodeDict)},
	}
}

func TestBlockTraceTreeReconstruction(t *testing.T) {
	bt := BlockTraceFromDecisions("col", 3, "integer", 100, 12345, decisionsForTest())
	if bt.Root == nil {
		t.Fatal("no root")
	}
	if bt.Root.Scheme != "Dictionary" || bt.Root.Depth != 0 {
		t.Fatalf("root = %s depth %d", bt.Root.Scheme, bt.Root.Depth)
	}
	if bt.CascadeDepth != 3 {
		t.Errorf("CascadeDepth = %d, want 3", bt.CascadeDepth)
	}
	if len(bt.Root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(bt.Root.Children))
	}
	if bt.Root.Children[0].Scheme != "FastBP" || bt.Root.Children[1].Scheme != "RLE" {
		t.Errorf("children = %s, %s; want FastBP, RLE (sibling order)",
			bt.Root.Children[0].Scheme, bt.Root.Children[1].Scheme)
	}
	rle := bt.Root.Children[1]
	if len(rle.Children) != 2 || rle.Children[0].Scheme != "FastBP" || rle.Children[1].Scheme != "OneValue" {
		t.Fatalf("RLE children wrong: %+v", rle.Children)
	}
	// The winner flag must land on the node's scheme.
	won := 0
	for _, c := range bt.Root.Candidates {
		if c.Won {
			won++
			if c.Scheme != "Dictionary" {
				t.Errorf("winner = %s", c.Scheme)
			}
		}
	}
	if won != 1 {
		t.Errorf("%d winners", won)
	}
	if bt.Root.ActualRatio != 5 { // 400/80
		t.Errorf("ActualRatio = %g", bt.Root.ActualRatio)
	}
}

func TestTraceValidate(t *testing.T) {
	bt := BlockTraceFromDecisions("col", 0, "integer", 100, 1, decisionsForTest())
	tr := Trace{Version: TraceVersion, Blocks: []BlockTrace{bt}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	bad := tr
	bad.Version = 99
	if err := bad.Validate(); err == nil {
		t.Error("wrong version accepted")
	}

	broken := Trace{Version: TraceVersion, Blocks: []BlockTrace{{Column: "c", Type: "integer", Rows: 10}}}
	if err := broken.Validate(); err == nil {
		t.Error("missing root accepted")
	}
}

func TestTracerConcurrentAndSorted(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Record(BlockTraceFromDecisions("col", g*50+i, "integer", 10, 1, decisionsForTest()))
			}
		}(g)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap.Blocks) != 200 {
		t.Fatalf("%d blocks, want 200", len(snap.Blocks))
	}
	for i := range snap.Blocks {
		if snap.Blocks[i].Block != i {
			t.Fatalf("blocks not sorted: index %d holds block %d", i, snap.Blocks[i].Block)
		}
	}
	tr.Reset()
	if got := tr.Snapshot(); len(got.Blocks) != 0 {
		t.Errorf("Reset left %d blocks", len(got.Blocks))
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer enabled")
	}
	tr.Record(BlockTrace{}) // must not panic
	tr.Reset()
	if snap := tr.Snapshot(); snap.Version != TraceVersion || len(snap.Blocks) != 0 {
		t.Errorf("nil snapshot: %+v", snap)
	}
}

func TestRenderTree(t *testing.T) {
	bt := BlockTraceFromDecisions("price", 2, "integer", 100, 1, decisionsForTest())
	var b strings.Builder
	Trace{Version: TraceVersion, Blocks: []BlockTrace{bt}}.RenderTree(&b)
	out := b.String()
	for _, want := range []string{"price block 2", "Dictionary", "* RLE", "OneValue", "est"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestRequestIDsUnique(t *testing.T) {
	const n = 1000
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				ids <- NewRequestID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool, n)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := WithRequestID(t.Context(), "r-42")
	if got := RequestIDFrom(ctx); got != "r-42" {
		t.Errorf("RequestIDFrom = %q", got)
	}
	if got := RequestIDFrom(t.Context()); got != "" {
		t.Errorf("empty context gave %q", got)
	}
}

// lockedBuffer makes bytes.Buffer safe for the concurrent writes the
// slog handler issues from many request goroutines.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestLoggerConcurrentJSONLines(t *testing.T) {
	buf := &lockedBuffer{}
	logger := NewLogger(buf, slog.LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				logger.Info("request", "request_id", NewRequestID(), "route", "/v1/block", "worker", g)
			}
		}(g)
	}
	wg.Wait()
	// Every line must be a standalone valid JSON record.
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("corrupt log line %d: %v: %s", lines, err, sc.Text())
		}
		if rec["msg"] != "request" || rec["request_id"] == "" {
			t.Fatalf("unexpected record: %s", sc.Text())
		}
		lines++
	}
	if lines != 800 {
		t.Fatalf("%d log lines, want 800", lines)
	}
}
