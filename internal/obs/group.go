package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// This file adds label-keyed metric groups on top of Histogram: a
// HistogramGroup keys histograms by one label value (e.g. a replica
// name) and a CounterGroup does the same for counters. Both render as a
// single Prometheus metric family with one series per label value —
// the shape the cluster router uses for per-replica latency, attempt,
// and error series.

// HistogramGroup is a set of Histograms keyed by one label value.
// Lookup is lock-guarded but the returned *Histogram is the shared
// atomic type, so hot paths resolve their label once and observe
// lock-free afterwards. The zero value is ready to use.
type HistogramGroup struct {
	mu sync.Mutex
	m  map[string]*Histogram
}

// At returns (creating on first use) the histogram for one label value.
func (g *HistogramGroup) At(label string) *Histogram {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*Histogram)
	}
	h := g.m[label]
	if h == nil {
		h = &Histogram{}
		g.m[label] = h
	}
	return h
}

// Labels returns the known label values, sorted.
func (g *HistogramGroup) Labels() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.m))
	for l := range g.m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Snapshot summarizes every labeled histogram.
func (g *HistogramGroup) Snapshot() map[string]HistogramSnapshot {
	g.mu.Lock()
	labels := make([]string, 0, len(g.m))
	hists := make([]*Histogram, 0, len(g.m))
	for l, h := range g.m {
		labels = append(labels, l)
		hists = append(hists, h)
	}
	g.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(labels))
	for i, l := range labels {
		out[l] = hists[i].Snapshot()
	}
	return out
}

// WritePromLines renders the group as one Prometheus histogram family:
// per label value, the cumulative _bucket/_sum/_count series labeled
// {labelKey="value"}. HELP/TYPE headers are the caller's job.
func (g *HistogramGroup) WritePromLines(w io.Writer, name, labelKey string) {
	for _, l := range g.Labels() {
		g.At(l).WritePromLines(w, name, fmt.Sprintf("%s=%q", labelKey, l))
	}
}

// CounterGroup is a set of int64 counters keyed by one label value,
// with the same locking shape as HistogramGroup.
type CounterGroup struct {
	mu sync.Mutex
	m  map[string]*atomic.Int64
}

// At returns (creating on first use) the counter for one label value.
func (g *CounterGroup) At(label string) *atomic.Int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*atomic.Int64)
	}
	c := g.m[label]
	if c == nil {
		c = &atomic.Int64{}
		g.m[label] = c
	}
	return c
}

// Add adds delta to the labeled counter.
func (g *CounterGroup) Add(label string, delta int64) { g.At(label).Add(delta) }

// Labels returns the known label values, sorted.
func (g *CounterGroup) Labels() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.m))
	for l := range g.m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the current value of every labeled counter.
func (g *CounterGroup) Snapshot() map[string]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int64, len(g.m))
	for l, c := range g.m {
		out[l] = c.Load()
	}
	return out
}

// WritePromLines renders the group as one Prometheus family with one
// sample line per label value. HELP/TYPE headers are the caller's job.
func (g *CounterGroup) WritePromLines(w io.Writer, name, labelKey string) {
	for _, l := range g.Labels() {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, labelKey, l, g.At(l).Load())
	}
}
