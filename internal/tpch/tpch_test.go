package tpch

import (
	"testing"

	"btrblocks"
)

func TestLineitemShape(t *testing.T) {
	chunk := Lineitem(10000, 1)
	if chunk.NumRows() != 10000 {
		t.Fatalf("rows = %d", chunk.NumRows())
	}
	if len(chunk.Columns) != 13 {
		t.Fatalf("columns = %d", len(chunk.Columns))
	}
	byName := map[string]btrblocks.Column{}
	for _, c := range chunk.Columns {
		byName[c.Name] = c
	}
	// orderkey must be non-decreasing (sorted insert order)
	ok := byName["l_orderkey"].Ints
	for i := 1; i < len(ok); i++ {
		if ok[i] < ok[i-1] {
			t.Fatal("l_orderkey must be sorted")
		}
	}
	// quantities in 1..50
	for _, q := range byName["l_quantity"].Doubles {
		if q < 1 || q > 50 {
			t.Fatalf("quantity %f out of range", q)
		}
	}
	// discount has at most 11 distinct values
	distinct := map[float64]bool{}
	for _, d := range byName["l_discount"].Doubles {
		distinct[d] = true
	}
	if len(distinct) > 11 {
		t.Fatalf("%d distinct discounts", len(distinct))
	}
}

func TestNormalizedKeysAreHighCardinality(t *testing.T) {
	// §6.1: TPC-H integers are mostly unique/foreign keys with few runs.
	chunk := Orders(20000, 2)
	var keys []int32
	for _, c := range chunk.Columns {
		if c.Name == "o_orderkey" {
			keys = c.Ints
		}
	}
	seen := map[int32]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatal("o_orderkey must be unique")
		}
		seen[k] = true
	}
}

func TestCorpusVolumeMix(t *testing.T) {
	corpus := Corpus(20000, 3)
	if len(corpus) != 3 {
		t.Fatalf("%d tables", len(corpus))
	}
	byType := map[btrblocks.Type]int{}
	total := 0
	for _, ds := range corpus {
		for _, col := range ds.Chunk.Columns {
			byType[col.Type] += col.UncompressedBytes()
			total += col.UncompressedBytes()
		}
	}
	// strings should carry the majority of volume but less extremely
	// than PBI, and doubles a bigger share than in PBI (§6.1, Table 2)
	strFrac := float64(byType[btrblocks.TypeString]) / float64(total)
	dblFrac := float64(byType[btrblocks.TypeDouble]) / float64(total)
	if strFrac < 0.4 || strFrac > 0.8 {
		t.Fatalf("string fraction %.2f", strFrac)
	}
	if dblFrac < 0.1 {
		t.Fatalf("double fraction %.2f", dblFrac)
	}
}

func TestDeterminism(t *testing.T) {
	a := Lineitem(5000, 9)
	b := Lineitem(5000, 9)
	for ci := range a.Columns {
		ca, cb := a.Columns[ci], b.Columns[ci]
		if ca.Type == btrblocks.TypeDouble {
			for j := range ca.Doubles {
				if ca.Doubles[j] != cb.Doubles[j] {
					t.Fatalf("nondeterministic %s", ca.Name)
				}
			}
		}
	}
}
