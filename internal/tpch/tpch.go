// Package tpch generates a TPC-H-like synthetic corpus with the data
// characteristics §6.1 contrasts against the Public BI Benchmark: fully
// normalized tables whose integers are unique or foreign keys (few runs,
// few repeating patterns), doubles drawn from a single price range, and
// comment strings sampled from a word pool — i.e. data that compresses
// far worse than denormalized real-world tables.
package tpch

import (
	"fmt"
	"math/rand"

	"btrblocks"
	"btrblocks/coldata"
)

// Dataset is one generated table.
type Dataset struct {
	Name  string
	Chunk btrblocks.Chunk
}

var commentWords = []string{
	"furiously", "quickly", "slyly", "carefully", "blithely", "deposits",
	"requests", "accounts", "packages", "instructions", "foxes", "ideas",
	"theodolites", "pinto", "beans", "final", "regular", "express", "bold",
	"even", "special", "unusual", "pending", "ironic", "silent", "daring",
}

func comment(rng *rand.Rand, minWords, maxWords int) string {
	n := minWords + rng.Intn(maxWords-minWords+1)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += commentWords[rng.Intn(len(commentWords))]
	}
	return s
}

// Lineitem generates the lineitem table, TPC-H's volume carrier.
func Lineitem(rows int, seed int64) btrblocks.Chunk {
	rng := rand.New(rand.NewSource(seed))
	orderkey := make([]int32, rows)
	partkey := make([]int32, rows)
	suppkey := make([]int32, rows)
	linenumber := make([]int32, rows)
	quantity := make([]float64, rows)
	extendedprice := make([]float64, rows)
	discount := make([]float64, rows)
	tax := make([]float64, rows)
	shipdate := make([]int32, rows)
	returnflag := coldata.NewStringsBuilder(rows, rows)
	linestatus := coldata.NewStringsBuilder(rows, rows)
	shipmode := coldata.NewStringsBuilder(rows, rows*4)
	comments := coldata.NewStringsBuilder(rows, rows*27)

	flags := []string{"R", "A", "N"}
	statuses := []string{"O", "F"}
	modes := []string{"TRUCK", "MAIL", "SHIP", "AIR", "RAIL", "REG AIR", "FOB"}

	ok := int32(1)
	line := int32(1)
	for i := 0; i < rows; i++ {
		// orders have 1..7 lineitems: short runs on the sorted key only
		if line > int32(1+rng.Intn(7)) {
			ok += int32(1 + rng.Intn(3)) // sparse keys, as dbgen produces
			line = 1
		}
		orderkey[i] = ok
		linenumber[i] = line
		line++
		partkey[i] = int32(1 + rng.Intn(200000))
		suppkey[i] = int32(1 + rng.Intn(10000))
		q := float64(1 + rng.Intn(50))
		quantity[i] = q
		extendedprice[i] = q * float64(90000+rng.Intn(110001)) / 100
		discount[i] = float64(rng.Intn(11)) / 100
		tax[i] = float64(rng.Intn(9)) / 100
		shipdate[i] = int32(8036 + rng.Intn(2526)) // 1992-01-02 .. 1998-12-01 as day numbers
		returnflag = returnflag.Append(flags[rng.Intn(len(flags))])
		linestatus = linestatus.Append(statuses[rng.Intn(len(statuses))])
		shipmode = shipmode.Append(modes[rng.Intn(len(modes))])
		comments = comments.Append(comment(rng, 3, 10))
	}
	return btrblocks.Chunk{Columns: []btrblocks.Column{
		btrblocks.IntColumn("l_orderkey", orderkey),
		btrblocks.IntColumn("l_partkey", partkey),
		btrblocks.IntColumn("l_suppkey", suppkey),
		btrblocks.IntColumn("l_linenumber", linenumber),
		btrblocks.DoubleColumn("l_quantity", quantity),
		btrblocks.DoubleColumn("l_extendedprice", extendedprice),
		btrblocks.DoubleColumn("l_discount", discount),
		btrblocks.DoubleColumn("l_tax", tax),
		btrblocks.IntColumn("l_shipdate", shipdate),
		btrblocks.StringsColumn("l_returnflag", returnflag),
		btrblocks.StringsColumn("l_linestatus", linestatus),
		btrblocks.StringsColumn("l_shipmode", shipmode),
		btrblocks.StringsColumn("l_comment", comments),
	}}
}

// Orders generates the orders table.
func Orders(rows int, seed int64) btrblocks.Chunk {
	rng := rand.New(rand.NewSource(seed))
	orderkey := make([]int32, rows)
	custkey := make([]int32, rows)
	totalprice := make([]float64, rows)
	orderdate := make([]int32, rows)
	priority := coldata.NewStringsBuilder(rows, rows*8)
	status := coldata.NewStringsBuilder(rows, rows)
	comments := coldata.NewStringsBuilder(rows, rows*25)

	prios := []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	stats := []string{"O", "F", "P"}
	for i := 0; i < rows; i++ {
		orderkey[i] = int32(i*4 + 1) // unique, sparse, sorted
		custkey[i] = int32(1 + rng.Intn(150000))
		totalprice[i] = float64(100000+rng.Intn(40000000)) / 100
		orderdate[i] = int32(8036 + rng.Intn(2405))
		priority = priority.Append(prios[rng.Intn(len(prios))])
		status = status.Append(stats[rng.Intn(len(stats))])
		comments = comments.Append(comment(rng, 5, 12))
	}
	return btrblocks.Chunk{Columns: []btrblocks.Column{
		btrblocks.IntColumn("o_orderkey", orderkey),
		btrblocks.IntColumn("o_custkey", custkey),
		btrblocks.DoubleColumn("o_totalprice", totalprice),
		btrblocks.IntColumn("o_orderdate", orderdate),
		btrblocks.StringsColumn("o_orderpriority", priority),
		btrblocks.StringsColumn("o_orderstatus", status),
		btrblocks.StringsColumn("o_comment", comments),
	}}
}

// Part generates the part table.
func Part(rows int, seed int64) btrblocks.Chunk {
	rng := rand.New(rand.NewSource(seed))
	partkey := make([]int32, rows)
	size := make([]int32, rows)
	retail := make([]float64, rows)
	names := coldata.NewStringsBuilder(rows, rows*30)
	brands := coldata.NewStringsBuilder(rows, rows*8)
	types := coldata.NewStringsBuilder(rows, rows*20)
	containers := coldata.NewStringsBuilder(rows, rows*10)

	adjectives := []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched"}
	kinds := []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	metals := []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	finishes := []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	boxes := []string{"SM CASE", "SM BOX", "LG CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG"}
	for i := 0; i < rows; i++ {
		partkey[i] = int32(i + 1)
		size[i] = int32(1 + rng.Intn(50))
		retail[i] = float64(90000+((i%200000)/10)*32+(i%200000)%1000) / 100
		names = names.Append(adjectives[rng.Intn(len(adjectives))] + " " + adjectives[rng.Intn(len(adjectives))] + " " + metals[rng.Intn(len(metals))])
		brands = brands.Append(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5)))
		types = types.Append(kinds[rng.Intn(len(kinds))] + " " + finishes[rng.Intn(len(finishes))] + " " + metals[rng.Intn(len(metals))])
		containers = containers.Append(boxes[rng.Intn(len(boxes))])
	}
	return btrblocks.Chunk{Columns: []btrblocks.Column{
		btrblocks.IntColumn("p_partkey", partkey),
		btrblocks.IntColumn("p_size", size),
		btrblocks.DoubleColumn("p_retailprice", retail),
		btrblocks.StringsColumn("p_name", names),
		btrblocks.StringsColumn("p_brand", brands),
		btrblocks.StringsColumn("p_type", types),
		btrblocks.StringsColumn("p_container", containers),
	}}
}

// Corpus generates the three tables scaled so lineitem dominates, like
// TPC-H's volume distribution.
func Corpus(scaleRows int, seed int64) []Dataset {
	return []Dataset{
		{Name: "lineitem", Chunk: Lineitem(scaleRows, seed)},
		{Name: "orders", Chunk: Orders(scaleRows/4, seed+1)},
		{Name: "part", Chunk: Part(scaleRows/30+1, seed+2)},
	}
}
