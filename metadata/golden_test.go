package metadata

// Golden wire bytes for the BTRM sidecar (the format other tools and
// future sessions must keep reading), plus the pruning-soundness
// property: a block dropped by any Prune* rule provably contains no
// matching non-NULL row. False positives (kept blocks with no match)
// are fine; a false negative is data loss.

import (
	"encoding/hex"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"btrblocks"
	"btrblocks/internal/testgen"
)

// goldenCases pin AppendTo byte for byte. The int column has a NULL in
// its second block (bounds exclude the NULL slot), the double column has
// a NaN in its first block (bounds widened to ±Inf so no range ever
// prunes it), and the string column's 42-char minimum is truncated to
// the 32-byte bound prefix.
func goldenCases() []struct {
	name string
	col  btrblocks.Column
	hex  string
} {
	icol := btrblocks.IntColumn("i", []int32{1, 5, 3, -2})
	icol.Nulls = btrblocks.NewNullMask()
	icol.Nulls.SetNull(3)
	return []struct {
		name string
		col  btrblocks.Column
		hex  string
	}{
		{"int-with-null", icol,
			"4254524d01000100690200000002000000000000000001000000050000000200000001000000000300000003000000"},
		{"int64-timestamps", btrblocks.Int64Column("ts", []int64{1_600_000_000_000, 1_600_000_000_500}),
			"4254524d0103020074730100000002000000000000000000806e8774010000f4816e8774010000"},
		{"double-nan-widens", btrblocks.DoubleColumn("d", []float64{1.5, math.NaN(), 2.5}),
			"4254524d010101006402000000020000000000000000000000000000f0ff000000000000f07f01000000000000000000000000000004400000000000000440"},
		{"string-truncated-bound", btrblocks.StringColumn("s", []string{strings.Repeat("a", 40) + "zz", "b"}),
			"4254524d010201007301000000020000000000000000206161616161616161616161616161616161616161616161616161616161616161" + "0162"},
	}
}

func TestGoldenBytes(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			m := Build(tc.col, &btrblocks.Options{BlockSize: 2})
			got := m.AppendTo(nil)
			want, err := hex.DecodeString(tc.hex)
			if err != nil {
				t.Fatalf("bad golden hex: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("wire bytes drifted:\n got %x\nwant %x", got, want)
			}
			// And the golden bytes parse back to the same summaries.
			back, used, err := FromBytes(want)
			if err != nil || used != len(want) {
				t.Fatalf("golden bytes do not parse: %v (used %d)", err, used)
			}
			if !reflect.DeepEqual(back, m) {
				t.Fatalf("golden parse mismatch:\n%+v\n%+v", back, m)
			}
		})
	}
}

// soundnessCheck asserts that every block NOT in keep has no row
// matching the given predicate over the original values.
func soundnessCheck(t *testing.T, label string, rows, blockSize int, keep []int, matches func(i int) bool) {
	t.Helper()
	kept := make(map[int]bool, len(keep))
	for _, b := range keep {
		kept[b] = true
	}
	for i := 0; i < rows; i++ {
		if matches(i) && !kept[i/blockSize] {
			t.Fatalf("%s: row %d matches but its block %d was pruned (kept %v)",
				label, i, i/blockSize, keep)
		}
	}
}

// TestPruneSoundnessSweep runs the generator sweep over every type and
// rule: random probes and windows, NULL masks, NaN-bearing doubles.
func TestPruneSoundnessSweep(t *testing.T) {
	const blockSize = 100
	opt := &btrblocks.Options{BlockSize: blockSize}
	for si, spec := range testgen.Specs() {
		if spec.Rows == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(int64(3100 + si)))
		label := spec.Label()

		ints, inulls := testgen.IntValues(rng, spec)
		icol := withNullMask(btrblocks.IntColumn("i", ints), inulls)
		im := Build(icol, opt)
		inull := nullLookup(inulls)
		for k := 0; k < 8; k++ {
			lo := int32(rng.Intn(1 << 20))
			hi := lo + int32(rng.Intn(1<<16))
			keep := im.PruneIntRange(lo, hi)
			soundnessCheck(t, label+"/int-range", spec.Rows, blockSize, keep, func(i int) bool {
				return !inull[i] && ints[i] >= lo && ints[i] <= hi
			})
		}
		keep := im.PruneNotNull()
		soundnessCheck(t, label+"/int-notnull", spec.Rows, blockSize, keep, func(i int) bool {
			return !inull[i]
		})

		i64s, lnulls := testgen.Int64Values(rng, spec)
		lcol := withNullMask(btrblocks.Int64Column("l", i64s), lnulls)
		lm := Build(lcol, opt)
		lnull := nullLookup(lnulls)
		for k := 0; k < 8; k++ {
			lo := 1_600_000_000_000 + rng.Int63n(1<<32)
			hi := lo + rng.Int63n(1<<28)
			keep := lm.PruneInt64Range(lo, hi)
			soundnessCheck(t, label+"/int64-range", spec.Rows, blockSize, keep, func(i int) bool {
				return !lnull[i] && i64s[i] >= lo && i64s[i] <= hi
			})
		}

		dbls, dnulls := testgen.DoubleValues(rng, spec)
		dcol := withNullMask(btrblocks.DoubleColumn("d", dbls), dnulls)
		dm := Build(dcol, opt)
		dnull := nullLookup(dnulls)
		for k := 0; k < 8; k++ {
			lo := float64(rng.Intn(500_000)) / 100
			hi := lo + float64(rng.Intn(100_000))/100
			keep := dm.PruneDoubleRange(lo, hi)
			soundnessCheck(t, label+"/double-range", spec.Rows, blockSize, keep, func(i int) bool {
				return !dnull[i] && dbls[i] >= lo && dbls[i] <= hi
			})
		}

		strs, snulls := testgen.StringValues(rng, spec)
		scol := withNullMask(btrblocks.StringColumn("s", strs), snulls)
		sm := Build(scol, opt)
		snull := nullLookup(snulls)
		for k := 0; k < 8; k++ {
			probe := strs[rng.Intn(spec.Rows)]
			keep := sm.PruneStringEquals(probe)
			soundnessCheck(t, label+"/string-eq", spec.Rows, blockSize, keep, func(i int) bool {
				return !snull[i] && strs[i] == probe
			})
		}
	}
}

// TestPruneSoundnessLongStrings stresses the truncated-bound edge: values
// longer than the 32-byte bound prefix, probes that share the prefix but
// differ past it, and probes equal to a stored value.
func TestPruneSoundnessLongStrings(t *testing.T) {
	const blockSize = 4
	rng := rand.New(rand.NewSource(777))
	base := strings.Repeat("x", 31)
	vals := make([]string, 64)
	for i := range vals {
		// All values share a >=31-char prefix; suffixes differ beyond the
		// truncation point.
		vals[i] = base + strings.Repeat("y", rng.Intn(8)) + string(rune('a'+rng.Intn(4)))
	}
	m := Build(btrblocks.StringColumn("s", vals), &btrblocks.Options{BlockSize: blockSize})
	probes := append([]string{}, vals...)
	probes = append(probes, base, base+"zzzzzzzzzz", "a", strings.Repeat("z", 40))
	for _, probe := range probes {
		keep := m.PruneStringEquals(probe)
		soundnessCheck(t, "long-strings", len(vals), blockSize, keep, func(i int) bool {
			return vals[i] == probe
		})
	}
}

func withNullMask(col btrblocks.Column, nulls []int) btrblocks.Column {
	for _, i := range nulls {
		if col.Nulls == nil {
			col.Nulls = btrblocks.NewNullMask()
		}
		col.Nulls.SetNull(i)
	}
	return col
}

func nullLookup(nulls []int) map[int]bool {
	m := make(map[int]bool, len(nulls))
	for _, i := range nulls {
		m[i] = true
	}
	return m
}
