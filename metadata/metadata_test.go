package metadata

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"btrblocks"
)

func TestBuildIntSummaries(t *testing.T) {
	opt := &btrblocks.Options{BlockSize: 100}
	values := make([]int32, 250)
	for i := range values {
		values[i] = int32(i)
	}
	m := Build(btrblocks.IntColumn("seq", values), opt)
	if len(m.Blocks) != 3 || m.Rows() != 250 {
		t.Fatalf("blocks=%d rows=%d", len(m.Blocks), m.Rows())
	}
	if m.Blocks[0].IntMin != 0 || m.Blocks[0].IntMax != 99 {
		t.Fatalf("block 0 bounds: %+v", m.Blocks[0])
	}
	if m.Blocks[2].IntMin != 200 || m.Blocks[2].IntMax != 249 || m.Blocks[2].Rows != 50 {
		t.Fatalf("block 2 bounds: %+v", m.Blocks[2])
	}
}

func TestPruneIntRange(t *testing.T) {
	opt := &btrblocks.Options{BlockSize: 100}
	values := make([]int32, 500)
	for i := range values {
		values[i] = int32(i)
	}
	m := Build(btrblocks.IntColumn("seq", values), opt)
	if got := m.PruneIntRange(150, 250); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("prune [150,250] = %v", got)
	}
	if got := m.PruneIntRange(1000, 2000); got != nil {
		t.Fatalf("out-of-range prune = %v", got)
	}
	if got := m.PruneIntRange(0, 0); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("point prune = %v", got)
	}
}

func TestPruneDoubleAndNaN(t *testing.T) {
	opt := &btrblocks.Options{BlockSize: 4}
	values := []float64{1, 2, 3, 4, math.NaN(), 5, 6, 7, 100, 101, 102, 103}
	m := Build(btrblocks.DoubleColumn("d", values), opt)
	// the NaN block must widen to everything
	if got := m.PruneDoubleRange(-1e308, 1e308); len(got) != 3 {
		t.Fatalf("full-range prune = %v", got)
	}
	got := m.PruneDoubleRange(99, 104)
	found := false
	for _, b := range got {
		if b == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("prune [99,104] = %v missing block 2", got)
	}
}

func TestPruneStringEquals(t *testing.T) {
	opt := &btrblocks.Options{BlockSize: 3}
	values := []string{"apple", "banana", "cherry", "kiwi", "lemon", "mango", "peach", "pear", "plum"}
	m := Build(btrblocks.StringColumn("s", values), opt)
	if got := m.PruneStringEquals("lemon"); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("prune lemon = %v", got)
	}
	if got := m.PruneStringEquals("aaaa"); got != nil {
		t.Fatalf("prune aaaa = %v", got)
	}
	if got := m.PruneStringEquals("zzz"); got != nil {
		t.Fatalf("prune zzz = %v", got)
	}
}

func TestStringBoundsTruncation(t *testing.T) {
	long := make([]byte, 100)
	for i := range long {
		long[i] = 'x'
	}
	values := []string{string(long), "yolo"}
	m := Build(btrblocks.StringColumn("s", values), nil)
	if len(m.Blocks[0].StrMin) > maxStringBound || len(m.Blocks[0].StrMax) > maxStringBound {
		t.Fatal("bounds not truncated")
	}
	// the long value must still be findable despite truncation
	if got := m.PruneStringEquals(string(long)); len(got) != 1 {
		t.Fatalf("truncated long value pruned away: %v", got)
	}
}

func TestAllNullBlocks(t *testing.T) {
	opt := &btrblocks.Options{BlockSize: 4}
	values := make([]int32, 8)
	nulls := btrblocks.NewNullMask()
	for i := 0; i < 4; i++ {
		nulls.SetNull(i)
	}
	for i := 4; i < 8; i++ {
		values[i] = 42
	}
	col := btrblocks.IntColumn("n", values)
	col.Nulls = nulls
	m := Build(col, opt)
	if !m.Blocks[0].AllNull || m.Blocks[0].NullCount != 4 {
		t.Fatalf("block 0: %+v", m.Blocks[0])
	}
	if m.Blocks[1].AllNull {
		t.Fatalf("block 1: %+v", m.Blocks[1])
	}
	if got := m.PruneNotNull(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("PruneNotNull = %v", got)
	}
	if got := m.PruneIntRange(42, 42); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("all-null block not pruned: %v", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, col := range []btrblocks.Column{
		btrblocks.IntColumn("i", []int32{5, -3, 1 << 30}),
		btrblocks.DoubleColumn("d", []float64{1.5, math.Inf(1), -0.5}),
		btrblocks.StringColumn("s", []string{"alpha", "omega"}),
	} {
		m := Build(col, &btrblocks.Options{BlockSize: 2})
		data := m.AppendTo(nil)
		got, used, err := FromBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", col.Name, err)
		}
		if used != len(data) {
			t.Fatalf("%s: consumed %d of %d", col.Name, used, len(data))
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%s: round trip mismatch:\n%+v\n%+v", col.Name, got, m)
		}
	}
}

func TestSerializeCorrupt(t *testing.T) {
	m := Build(btrblocks.StringColumn("s", []string{"a", "b"}), nil)
	data := m.AppendTo(nil)
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := FromBytes(data[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestQuickPruneSoundness(t *testing.T) {
	// Pruning must be sound: every block containing the probe must be in
	// the pruned set (no false negatives).
	opt := &btrblocks.Options{BlockSize: 50}
	f := func(values []int32, probe int32) bool {
		if len(values) == 0 {
			return true
		}
		col := btrblocks.IntColumn("q", values)
		m := Build(col, opt)
		keep := map[int]bool{}
		for _, b := range m.PruneIntRange(probe, probe) {
			keep[b] = true
		}
		for i, v := range values {
			if v == probe && !keep[i/50] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
