// Package metadata implements the statistics layer the paper deliberately
// keeps *out* of the data files (§2.1): per-block min/max/null summaries
// that live in a separate object, so a query engine can prune blocks
// before fetching anything over a high-latency network. BtrBlocks files
// stay pure blocks of compressed data; this package provides the
// orthogonal layer on top.
package metadata

import (
	"encoding/binary"
	"errors"
	"math"

	"btrblocks"
)

// ErrCorrupt is returned for malformed metadata bytes.
var ErrCorrupt = errors.New("metadata: corrupt stream")

// maxStringBound caps stored string bounds; longer values are truncated
// (still valid bounds for pruning: a truncated min is <= the true min's
// prefix semantics used by Overlaps).
const maxStringBound = 32

// BlockSummary is the prunable statistics of one block.
type BlockSummary struct {
	Rows      int
	NullCount int
	// Typed bounds over the non-null values; unset when the block is
	// entirely NULL (AllNull true).
	AllNull   bool
	IntMin    int32
	IntMax    int32
	Int64Min  int64
	Int64Max  int64
	DoubleMin float64
	DoubleMax float64
	// String bounds are byte-truncated to maxStringBound: StrMin is <=
	// every value, StrMaxPrefix is a prefix-upper-bound (every value is
	// < StrMaxPrefix appended with 0xFF bytes).
	StrMin string
	StrMax string
}

// ColumnMeta is the metadata object for one column file.
type ColumnMeta struct {
	Name   string
	Type   btrblocks.Type
	Blocks []BlockSummary
}

// Rows returns the total row count.
func (m *ColumnMeta) Rows() int {
	total := 0
	for _, b := range m.Blocks {
		total += b.Rows
	}
	return total
}

// Build computes per-block summaries for a column, using the same block
// boundaries the compressor uses for the given options.
func Build(col btrblocks.Column, opt *btrblocks.Options) ColumnMeta {
	bs := btrblocks.DefaultBlockSize
	if opt != nil && opt.BlockSize > 0 {
		bs = opt.BlockSize
	}
	meta := ColumnMeta{Name: col.Name, Type: col.Type}
	n := col.Len()
	for lo := 0; lo < n; lo += bs {
		hi := lo + bs
		if hi > n {
			hi = n
		}
		meta.Blocks = append(meta.Blocks, summarize(&col, lo, hi))
	}
	return meta
}

func summarize(col *btrblocks.Column, lo, hi int) BlockSummary {
	s := BlockSummary{Rows: hi - lo, AllNull: true}
	for i := lo; i < hi; i++ {
		if col.Nulls.IsNull(i) {
			s.NullCount++
			continue
		}
		switch col.Type {
		case btrblocks.TypeInt:
			v := col.Ints[i]
			if s.AllNull || v < s.IntMin {
				s.IntMin = v
			}
			if s.AllNull || v > s.IntMax {
				s.IntMax = v
			}
		case btrblocks.TypeInt64:
			v := col.Ints64[i]
			if s.AllNull || v < s.Int64Min {
				s.Int64Min = v
			}
			if s.AllNull || v > s.Int64Max {
				s.Int64Max = v
			}
		case btrblocks.TypeDouble:
			v := col.Doubles[i]
			if v != v { // NaN participates in no ordering; widen to all
				s.DoubleMin = math.Inf(-1)
				s.DoubleMax = math.Inf(1)
				s.AllNull = false
				continue
			}
			if s.AllNull || v < s.DoubleMin {
				s.DoubleMin = v
			}
			if s.AllNull || v > s.DoubleMax {
				s.DoubleMax = v
			}
		case btrblocks.TypeString:
			v := col.Strings.At(i)
			if s.AllNull || v < s.StrMin {
				s.StrMin = truncate(v)
			}
			if s.AllNull || v > s.StrMax {
				s.StrMax = truncate(v)
			}
		}
		s.AllNull = false
	}
	return s
}

func truncate(v string) string {
	if len(v) > maxStringBound {
		return v[:maxStringBound]
	}
	return v
}

// --- pruning ---

// PruneIntRange returns the indexes of blocks that may contain a value in
// [lo, hi].
func (m *ColumnMeta) PruneIntRange(lo, hi int32) []int {
	var out []int
	for i, b := range m.Blocks {
		if b.AllNull {
			continue
		}
		if b.IntMax >= lo && b.IntMin <= hi {
			out = append(out, i)
		}
	}
	return out
}

// PruneInt64Range returns the indexes of blocks that may contain a value
// in [lo, hi].
func (m *ColumnMeta) PruneInt64Range(lo, hi int64) []int {
	var out []int
	for i, b := range m.Blocks {
		if b.AllNull {
			continue
		}
		if b.Int64Max >= lo && b.Int64Min <= hi {
			out = append(out, i)
		}
	}
	return out
}

// PruneDoubleRange returns the indexes of blocks that may contain a value
// in [lo, hi].
func (m *ColumnMeta) PruneDoubleRange(lo, hi float64) []int {
	var out []int
	for i, b := range m.Blocks {
		if b.AllNull {
			continue
		}
		if b.DoubleMax >= lo && b.DoubleMin <= hi {
			out = append(out, i)
		}
	}
	return out
}

// PruneStringEquals returns the indexes of blocks that may contain the
// exact string v, honoring the truncated bounds.
func (m *ColumnMeta) PruneStringEquals(v string) []int {
	var out []int
	tv := truncate(v)
	for i, b := range m.Blocks {
		if b.AllNull {
			continue
		}
		// b.StrMin <= v (compare on the truncated prefix semantics) and
		// v's truncated form <= StrMax-as-prefix-upper-bound.
		if b.StrMin <= v && !(tv > b.StrMax && !hasPrefix(tv, b.StrMax)) {
			out = append(out, i)
		}
	}
	return out
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// PruneNotNull returns the indexes of blocks with at least one non-null.
func (m *ColumnMeta) PruneNotNull() []int {
	var out []int
	for i, b := range m.Blocks {
		if !b.AllNull {
			out = append(out, i)
		}
	}
	return out
}

// --- serialization ---

// AppendTo serializes the metadata object (it lives in its own file,
// apart from the data blocks).
func (m *ColumnMeta) AppendTo(dst []byte) []byte {
	dst = append(dst, 'B', 'T', 'R', 'M', 1, byte(m.Type))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Name)))
	dst = append(dst, m.Name...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Blocks)))
	for _, b := range m.Blocks {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(b.Rows))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(b.NullCount))
		flags := byte(0)
		if b.AllNull {
			flags = 1
		}
		dst = append(dst, flags)
		switch m.Type {
		case btrblocks.TypeInt:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(b.IntMin))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(b.IntMax))
		case btrblocks.TypeInt64:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(b.Int64Min))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(b.Int64Max))
		case btrblocks.TypeDouble:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.DoubleMin))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.DoubleMax))
		case btrblocks.TypeString:
			dst = append(dst, byte(len(b.StrMin)))
			dst = append(dst, b.StrMin...)
			dst = append(dst, byte(len(b.StrMax)))
			dst = append(dst, b.StrMax...)
		}
	}
	return dst
}

// FromBytes deserializes a metadata object, returning it and the bytes
// consumed.
func FromBytes(src []byte) (ColumnMeta, int, error) {
	var m ColumnMeta
	if len(src) < 8 || string(src[:4]) != "BTRM" || src[4] != 1 {
		return m, 0, ErrCorrupt
	}
	m.Type = btrblocks.Type(src[5])
	if m.Type > btrblocks.TypeInt64 {
		return m, 0, ErrCorrupt
	}
	nameLen := int(binary.LittleEndian.Uint16(src[6:]))
	pos := 8
	if len(src) < pos+nameLen+4 {
		return m, 0, ErrCorrupt
	}
	m.Name = string(src[pos : pos+nameLen])
	pos += nameLen
	blocks := int(binary.LittleEndian.Uint32(src[pos:]))
	pos += 4
	if blocks < 0 || blocks > 1<<24 {
		return m, 0, ErrCorrupt
	}
	for i := 0; i < blocks; i++ {
		var b BlockSummary
		if len(src) < pos+9 {
			return m, 0, ErrCorrupt
		}
		b.Rows = int(binary.LittleEndian.Uint32(src[pos:]))
		b.NullCount = int(binary.LittleEndian.Uint32(src[pos+4:]))
		b.AllNull = src[pos+8]&1 != 0
		pos += 9
		switch m.Type {
		case btrblocks.TypeInt:
			if len(src) < pos+8 {
				return m, 0, ErrCorrupt
			}
			b.IntMin = int32(binary.LittleEndian.Uint32(src[pos:]))
			b.IntMax = int32(binary.LittleEndian.Uint32(src[pos+4:]))
			pos += 8
		case btrblocks.TypeInt64:
			if len(src) < pos+16 {
				return m, 0, ErrCorrupt
			}
			b.Int64Min = int64(binary.LittleEndian.Uint64(src[pos:]))
			b.Int64Max = int64(binary.LittleEndian.Uint64(src[pos+8:]))
			pos += 16
		case btrblocks.TypeDouble:
			if len(src) < pos+16 {
				return m, 0, ErrCorrupt
			}
			b.DoubleMin = math.Float64frombits(binary.LittleEndian.Uint64(src[pos:]))
			b.DoubleMax = math.Float64frombits(binary.LittleEndian.Uint64(src[pos+8:]))
			pos += 16
		case btrblocks.TypeString:
			var err error
			b.StrMin, pos, err = readShortString(src, pos)
			if err != nil {
				return m, 0, err
			}
			b.StrMax, pos, err = readShortString(src, pos)
			if err != nil {
				return m, 0, err
			}
		}
		m.Blocks = append(m.Blocks, b)
	}
	return m, pos, nil
}

func readShortString(src []byte, pos int) (string, int, error) {
	if pos >= len(src) {
		return "", 0, ErrCorrupt
	}
	l := int(src[pos])
	pos++
	if l > maxStringBound || len(src) < pos+l {
		return "", 0, ErrCorrupt
	}
	return string(src[pos : pos+l]), pos + l, nil
}
