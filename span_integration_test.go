package btrblocks

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"btrblocks/internal/obs"
)

// spanTestColumn builds a multi-block int column whose compression and
// scan paths fan out per-block work.
func spanTestColumn(t *testing.T) ([]byte, Column) {
	t.Helper()
	vals := make([]int32, 40000)
	for i := range vals {
		vals[i] = int32(i % 977)
	}
	col := Column{Name: "v", Type: TypeInt, Ints: vals}
	data, err := CompressColumn(col, &Options{BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return data, col
}

// TestSpanRecordingConcurrentCompressScan drives compression and scans
// under recorded spans from many goroutines at Parallelism 1 and
// GOMAXPROCS, so `go test -race` can see any data race between the
// per-block task spans and the recorder's ring.
func TestSpanRecordingConcurrentCompressScan(t *testing.T) {
	data, col := spanTestColumn(t)
	rec := obs.NewSpanRecorder(obs.SpanRecorderConfig{Capacity: 256, Process: "test"})

	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		opt := &Options{BlockSize: 4096, Parallelism: par}
		var wg sync.WaitGroup
		errCh := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, root := rec.StartRoot(context.Background(), "test.roundtrip")
				if _, err := CompressColumnContext(ctx, col, opt); err != nil {
					errCh <- err
					return
				}
				got, err := DecompressColumnContext(ctx, data, opt)
				if err != nil {
					errCh <- err
					return
				}
				if got.Len() != col.Len() {
					errCh <- fmt.Errorf("decoded %d rows, want %d", got.Len(), col.Len())
					return
				}
				ix, err := ParseColumnIndex(data)
				if err != nil {
					errCh <- err
					return
				}
				if _, err := ix.CountEqualInt32Context(ctx, data, 42, opt); err != nil {
					errCh <- err
					return
				}
				root.End()
			}()
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatalf("parallelism %d: %v", par, err)
		}
	}
	if ss := rec.Snapshot(obs.SpanFilter{}); len(ss.Spans) == 0 {
		t.Fatal("no spans recorded")
	} else if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeDisabledTracingZeroAlloc pins the disabled-tracing cost of
// the decode hot path at zero: decompressing through the Context
// variant with a span-free context must allocate exactly as much as the
// span-unaware entry point. This is the property that lets the tracing
// hooks stay compiled into every per-block task unconditionally.
func TestDecodeDisabledTracingZeroAlloc(t *testing.T) {
	data, _ := spanTestColumn(t)
	opt := &Options{Parallelism: 1}
	ctx := context.Background()

	base := testing.AllocsPerRun(20, func() {
		if _, err := DecompressColumn(data, opt); err != nil {
			t.Fatal(err)
		}
	})
	withCtx := testing.AllocsPerRun(20, func() {
		if _, err := DecompressColumnContext(ctx, data, opt); err != nil {
			t.Fatal(err)
		}
	})
	if withCtx > base {
		t.Fatalf("span-free context decode allocates %.0f, span-unaware %.0f: tracing is not free when disabled", withCtx, base)
	}
}
