GO ?= go

.PHONY: all build test race vet fmt check bench bench-smoke bench-baseline bench-compare ci serve-smoke trace-smoke ingest-smoke ingest-bench spans-smoke cluster-smoke chaos fuzz-smoke query-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race uses -short to skip the full experiments sweep (it re-runs the
# same library code the other packages already race-test, but takes
# most of an hour under the race detector).
race:
	$(GO) test -race -short -timeout 30m ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# serve-smoke starts btrserved on a generated corpus (debug server
# included) and verifies every endpoint against direct in-process
# decompression.
serve-smoke:
	$(GO) run ./cmd/btrserved -smoke

# ingest-smoke is the end-to-end crash-safety gate for the ingestion
# service: btringest spawns itself as a child on a loopback port, kills
# it with SIGKILL mid-append, restarts it, and verifies that the
# published chunks decode to exactly the acknowledged rows.
ingest-smoke:
	$(GO) run ./cmd/btringest -smoke

# cluster-smoke is the replicated-serving chaos gate: btrrouted places a
# generated corpus over three child node processes with R=2, verifies
# every file scans bit-correct through the router, flips a byte on one
# replica (scans must stay correct while the repair loop heals it),
# SIGKILLs a node mid-scan (scans must keep completing off the
# survivors), and proves hedged requests fire and win against a
# latency-skewed replica — all visible in /metrics and /v1/spans.
cluster-smoke:
	$(GO) run ./cmd/btrrouted -smoke

# spans-smoke is the end-to-end tracing gate: both server smokes assert
# their /v1/spans endpoints. btrserved validates its recorded server
# spans and telemetry exemplar links; btringest drives one trace ID
# across two processes (append → WAL → flush → cascade compress →
# atomic publish → invalidate → serve) and asserts both span stores
# return the trace with parent/child links intact.
spans-smoke: serve-smoke ingest-smoke
	@echo "spans smoke: OK"

# ingest-bench single-shots the ingestion benchmarks (rows/s vs batch
# size, group-commit scaling, flush+publish) so the harness cannot
# bit-rot; nothing is timed.
ingest-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkAppend|BenchmarkFlushPublish' -benchtime 1x ./internal/ingest/
	@echo "ingest bench: OK"

# trace-smoke runs the decision-trace CLI on the checked-in testdata and
# validates the output against the schema documented in OBSERVABILITY.md.
trace-smoke:
	$(GO) run ./cmd/btrblocks trace -schema int,int64,double,string -block 800 -validate testdata/trace_smoke.csv > /dev/null
	@echo "trace smoke: OK"

# chaos is the fault-injection gate: seeded single-byte corruption of
# every container format must be detected (the v2 checksum story), the
# faultfs injectors must behave deterministically, and the blockstore's
# quarantine/retry/partial-scan degradation paths must hold.
chaos:
	$(GO) test -run 'Chaos|Corruption|Truncation|LegacyV1' .
	$(GO) test ./internal/faultfs/
	$(GO) test -run 'Quarantine|ClientRetr|ClientDoes|AttemptTimeout|RawFetchDetects' ./internal/blockstore/
	@echo "chaos gate: OK"

# query-smoke is the query-engine gate: the differential oracle suite
# (random plans vs a decompress-everything reference), the NULL
# three-valued-logic matrix, selection-vector flow, the /v1/query
# endpoint contract on one node (status codes, sidecar pruning, corrupt
# blocks), and the cluster scatter-gather equivalence + failover tests.
query-smoke:
	$(GO) test -run 'TestOracle|TestNullSemantics|TestSelection|TestAgg|TestPlan' ./internal/query/
	$(GO) test -run 'TestQueryEndpoint' ./internal/blockstore/
	$(GO) test -run 'TestQueryScatterGather|TestQueryHTTPFailover' ./internal/cluster/
	$(GO) test -run 'TestAddRange' ./internal/roaring/
	@echo "query smoke: OK"

# fuzz-smoke runs every fuzz target for a short fixed budget on top of
# the committed seed corpora in testdata/fuzz/. Continuous fuzzing uses
# the same targets without the -fuzztime bound.
FUZZ_TARGETS = FuzzDecompressColumn FuzzDecompressIntStream FuzzDecompressStringStream FuzzCompressIntRoundTrip FuzzStreamReader
QUERY_FUZZ_TARGETS = FuzzQueryPlan
FUZZ_TIME ?= 10s
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t ($(FUZZ_TIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZ_TIME) . || exit 1; \
	done
	@for t in $(QUERY_FUZZ_TARGETS); do \
		echo "fuzz $$t ($(FUZZ_TIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZ_TIME) ./internal/query/ || exit 1; \
	done
	@echo "fuzz smoke: OK"

# check is the full gate: format, vet, build, tests (incl. race), and
# the end-to-end smoke tests. ci.sh splits the same steps into a fast
# tier 1 (fmt, build, test, race) and a deep tier 2 (vet, fuzz smoke,
# chaos gate, smokes).
check: fmt vet build test race chaos query-smoke fuzz-smoke serve-smoke trace-smoke ingest-smoke cluster-smoke

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and single-shots the parallel decode benchmarks
# (§6.4 scaling curve) so CI catches bit-rot without timing anything.
bench-smoke:
	$(GO) test -run '^$$' -bench 'DecompressParallel|ScanParallel' -benchtime 1x .
	@echo "bench smoke: OK"

# bench-baseline re-measures the single-core decode suites (per-scheme
# grid + kernel microbenchmarks) and snapshots them to BENCH_decode.json.
# Run it on the reference host after an intentional perf change and
# commit the result; PERFORMANCE.md documents the schema and workflow.
bench-baseline:
	$(GO) run ./cmd/benchtraj record -o BENCH_decode.json

# bench-compare re-runs the same suites and fails on >10% regression
# against the committed baseline (override: BTR_BENCH_TOLERANCE=0.25).
bench-compare:
	$(GO) run ./cmd/benchtraj compare -baseline BENCH_decode.json

ci: check
