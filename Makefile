GO ?= go

.PHONY: all build test race vet fmt check bench ci serve-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race uses -short to skip the full experiments sweep (it re-runs the
# same library code the other packages already race-test, but takes
# most of an hour under the race detector).
race:
	$(GO) test -race -short -timeout 30m ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# serve-smoke starts btrserved on a generated corpus and verifies every
# endpoint against direct in-process decompression.
serve-smoke:
	$(GO) run ./cmd/btrserved -smoke

# check is the tier-1 gate: format, vet, build, tests (incl. race),
# and the end-to-end serving smoke test.
check: fmt vet build test race serve-smoke

bench:
	$(GO) test -bench=. -benchmem ./...

ci: check
