GO ?= go

.PHONY: all build test race vet fmt check bench ci serve-smoke trace-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race uses -short to skip the full experiments sweep (it re-runs the
# same library code the other packages already race-test, but takes
# most of an hour under the race detector).
race:
	$(GO) test -race -short -timeout 30m ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# serve-smoke starts btrserved on a generated corpus (debug server
# included) and verifies every endpoint against direct in-process
# decompression.
serve-smoke:
	$(GO) run ./cmd/btrserved -smoke

# trace-smoke runs the decision-trace CLI on the checked-in testdata and
# validates the output against the schema documented in OBSERVABILITY.md.
trace-smoke:
	$(GO) run ./cmd/btrblocks trace -schema int,int64,double,string -block 800 -validate testdata/trace_smoke.csv > /dev/null
	@echo "trace smoke: OK"

# check is the full gate: format, vet, build, tests (incl. race), and
# the end-to-end smoke tests. ci.sh splits the same steps into a fast
# tier 1 (fmt, build, test) and a deep tier 2 (vet, race, smokes).
check: fmt vet build test race serve-smoke trace-smoke

bench:
	$(GO) test -bench=. -benchmem ./...

ci: check
