// Golden determinism test: the committed testdata corpus, compressed at
// workers 1 and N, must produce byte-identical v2 files and identical
// Verify reports. This is the harness's cross-machine anchor — any
// worker-count dependence sneaking into the compressor shows up as a
// diff against the serial bytes, and any drift in the format itself
// shows up against the pinned digest below.
package btrblocks_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"

	"btrblocks"
	"btrblocks/internal/csvconv"
)

// goldenChunkSHA256 pins the v2 chunk container bytes for
// testdata/trace_smoke.csv compressed with BlockSize 800 at any worker
// count. Regenerate it (and justify the format change in FORMAT.md) if
// the encoding legitimately changes.
const goldenChunkSHA256 = "c3db257376aa06c9d9a8d8dabbc0dc5d6b199897013cc7ddd9b12ec87017cc43"

func goldenCorpus(t *testing.T) *btrblocks.Chunk {
	t.Helper()
	f, err := os.Open("testdata/trace_smoke.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	types := []btrblocks.Type{
		btrblocks.TypeInt, btrblocks.TypeInt64, btrblocks.TypeDouble, btrblocks.TypeString,
	}
	chunk, err := csvconv.ReadChunk(f, types)
	if err != nil {
		t.Fatal(err)
	}
	return chunk
}

func TestGoldenDeterminism(t *testing.T) {
	chunk := goldenCorpus(t)

	encode := func(workers int) []byte {
		opt := &btrblocks.Options{BlockSize: 800, Parallelism: workers}
		cc, err := btrblocks.CompressChunk(chunk, opt)
		if err != nil {
			t.Fatalf("compress at %d workers: %v", workers, err)
		}
		return cc.EncodeFile()
	}

	serial := encode(1)
	for _, workers := range []int{2, 8} {
		if got := encode(workers); !bytes.Equal(serial, got) {
			t.Fatalf("chunk file bytes at %d workers differ from serial", workers)
		}
	}

	sum := sha256.Sum256(serial)
	if got := hex.EncodeToString(sum[:]); got != goldenChunkSHA256 {
		t.Fatalf("golden corpus digest drifted:\n got  %s\n want %s\n"+
			"(a deliberate format change must update goldenChunkSHA256)", got, goldenChunkSHA256)
	}

	// The deep Verify report over the golden bytes is identical at every
	// worker count — down to the JSON encoding.
	var report []byte
	for _, workers := range []int{1, 2, 8} {
		rep := btrblocks.Verify(serial, &btrblocks.VerifyOptions{Deep: true, Parallelism: workers})
		if !rep.OK {
			t.Fatalf("golden corpus fails verify at %d workers", workers)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if report == nil {
			report = js
		} else if !bytes.Equal(report, js) {
			t.Fatalf("verify report at %d workers differs from serial", workers)
		}
	}

	// And the golden bytes round-trip: every column decodes back to the
	// CSV corpus at both worker counts.
	cc, err := btrblocks.DecodeFile(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		got, err := btrblocks.DecompressChunk(cc, &btrblocks.Options{BlockSize: 800, Parallelism: workers})
		if err != nil {
			t.Fatalf("decompress at %d workers: %v", workers, err)
		}
		if got.NumRows() != chunk.NumRows() {
			t.Fatalf("rows %d != %d", got.NumRows(), chunk.NumRows())
		}
		for ci := range chunk.Columns {
			want, have := chunk.Columns[ci], got.Columns[ci]
			for i := 0; i < want.Len(); i++ {
				if want.Nulls.IsNull(i) != have.Nulls.IsNull(i) {
					t.Fatalf("col %s row %d: NULL mismatch", want.Name, i)
				}
			}
		}
	}
}
